//! Benchmarks of the simulation engine itself: how fast the substrate
//! data structures and whole-SoC runs execute. These guard against
//! performance regressions that would make the figure grids impractically
//! slow. Criterion-free: timings come from `hiss_bench::bench`
//! (`std::time::Instant`), which also emits machine-readable JSON lines.

use std::hint::black_box;

use hiss::{ExperimentBuilder, QosParams, SystemConfig};
use hiss_bench::bench;
use hiss_mem::{Cache, CacheConfig, GsharePredictor, Owner, WarmthModel};
use hiss_sim::{EventQueue, Ns, Rng};

fn bench_event_queue() {
    let mut rng = Rng::new(7);
    let times: Vec<Ns> = (0..1024u64)
        .map(|_| Ns::from_nanos(rng.gen_range(0, 1_000_000)))
        .collect();
    bench("event_queue_push_pop_1k", 5, || {
        let mut q = EventQueue::with_capacity(times.len());
        for (i, t) in times.iter().enumerate() {
            q.push(*t, i);
        }
        let mut sum = 0usize;
        while let Some((_, e)) = q.pop() {
            sum += e;
        }
        black_box(sum)
    });
}

fn bench_cache_model() {
    bench("structural_cache_10k_accesses", 5, || {
        let mut rng = Rng::new(9);
        let mut cache = Cache::new(CacheConfig::default());
        for _ in 0..10_000 {
            let addr = rng.gen_range(0, 1 << 16);
            cache.access(black_box(addr), Owner::User);
        }
        black_box(cache.miss_rate())
    });

    bench("gshare_10k_branches", 5, || {
        let mut rng = Rng::new(10);
        let mut bp = GsharePredictor::new(12);
        for _ in 0..10_000 {
            let pc = rng.gen_range(0, 1 << 12) * 4;
            bp.execute(black_box(pc), rng.gen_bool(0.6));
        }
        black_box(bp.mispredict_rate())
    });

    bench("warmth_model_10k_episodes", 5, || {
        let mut w = WarmthModel::new_warm();
        for i in 0..10_000u64 {
            if i % 3 == 0 {
                w.on_kernel(Ns::from_nanos(2_000));
            } else {
                w.on_user(Ns::from_micros(20));
            }
        }
        black_box(w.avg_cache_coldness())
    });
}

fn bench_full_runs() {
    let cfg = SystemConfig::a10_7850k();

    bench("quiet_baseline_x264", 3, || {
        black_box(
            ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app_pinned("ubench")
                .run(),
        )
    });

    bench("saturating_ubench_corun", 3, || {
        black_box(
            ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app("ubench")
                .run(),
        )
    });

    bench("qos_throttled_corun", 3, || {
        black_box(
            ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app("ubench")
                .qos(QosParams::threshold_percent(1.0))
                .run(),
        )
    });
}

fn main() {
    bench_event_queue();
    bench_cache_model();
    bench_full_runs();
}
