//! Criterion benchmarks of the simulation engine itself: how fast the
//! substrate data structures and whole-SoC runs execute. These guard
//! against performance regressions that would make the figure grids
//! impractically slow.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use hiss::{ExperimentBuilder, QosParams, SystemConfig};
use hiss_mem::{Cache, CacheConfig, GsharePredictor, Owner, WarmthModel};
use hiss_sim::{EventQueue, Ns, Rng};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = Rng::new(7);
        b.iter_batched(
            || {
                (0..1024u64)
                    .map(|_| Ns::from_nanos(rng.gen_range(0, 1_000_000)))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(*t, i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_model(c: &mut Criterion) {
    c.bench_function("structural_cache_10k_accesses", |b| {
        let mut rng = Rng::new(9);
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::default());
            for _ in 0..10_000 {
                let addr = rng.gen_range(0, 1 << 16);
                cache.access(black_box(addr), Owner::User);
            }
            black_box(cache.miss_rate())
        })
    });

    c.bench_function("gshare_10k_branches", |b| {
        let mut rng = Rng::new(10);
        b.iter(|| {
            let mut bp = GsharePredictor::new(12);
            for _ in 0..10_000 {
                let pc = rng.gen_range(0, 1 << 12) * 4;
                bp.execute(black_box(pc), rng.gen_bool(0.6));
            }
            black_box(bp.mispredict_rate())
        })
    });

    c.bench_function("warmth_model_10k_episodes", |b| {
        b.iter(|| {
            let mut w = WarmthModel::new_warm();
            for i in 0..10_000u64 {
                if i % 3 == 0 {
                    w.on_kernel(Ns::from_nanos(2_000));
                } else {
                    w.on_user(Ns::from_micros(20));
                }
            }
            black_box(w.avg_cache_coldness())
        })
    });
}

fn bench_full_runs(c: &mut Criterion) {
    let cfg = SystemConfig::a10_7850k();
    let mut g = c.benchmark_group("full_soc_runs");
    g.sample_size(10);

    g.bench_function("quiet_baseline_x264", |b| {
        b.iter(|| {
            black_box(
                ExperimentBuilder::new(cfg)
                    .cpu_app("x264")
                    .gpu_app_pinned("ubench")
                    .run(),
            )
        })
    });

    g.bench_function("saturating_ubench_corun", |b| {
        b.iter(|| {
            black_box(
                ExperimentBuilder::new(cfg)
                    .cpu_app("x264")
                    .gpu_app("ubench")
                    .run(),
            )
        })
    });

    g.bench_function("qos_throttled_corun", |b| {
        b.iter(|| {
            black_box(
                ExperimentBuilder::new(cfg)
                    .cpu_app("x264")
                    .gpu_app("ubench")
                    .qos(QosParams::threshold_percent(1.0))
                    .run(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_cache_model, bench_full_runs);
criterion_main!(benches);
