//! Timings for each experiment family, one benchmark per paper artifact
//! (scaled-down workload subsets — the point is tracking the harness's
//! own cost, not regenerating the figures; that is the `figures` bench
//! target). Criterion-free: see `hiss_bench::bench`.

use std::hint::black_box;

use hiss::experiments::{fig12, fig3, fig4, fig5, fig6, fig9, pareto, tables, BaselineCache};
use hiss::{Mitigation, SystemConfig};
use hiss_bench::bench;

const CPU: [&str; 2] = ["x264", "raytrace"];
const GPU: [&str; 2] = ["sssp", "ubench"];

fn main() {
    let cfg = SystemConfig::a10_7850k();
    // Time the cold path: cached baselines would otherwise make every
    // sample after the first nearly free.
    let clear = || BaselineCache::global().clear();

    bench("table1", 3, || black_box(tables::table1(&cfg)));

    bench("fig3_cell_pair", 3, || {
        clear();
        black_box(fig3::fig3_with(&cfg, &["x264"], &["ubench"]))
    });

    bench("fig4_subset", 3, || {
        clear();
        black_box(fig4::fig4_with(&cfg, &["bfs", "ubench"]))
    });

    bench("fig5_subset", 3, || {
        clear();
        black_box(fig5::fig5_with(&cfg, &CPU))
    });

    bench("fig6_monolithic_subset", 3, || {
        clear();
        black_box(fig6::fig6_technique(
            &cfg,
            fig6::Technique::MonolithicBottomHalf,
            &CPU,
            &GPU,
        ))
    });

    bench("fig9_two_combos", 3, || {
        clear();
        black_box(fig9::fig9_with(
            &cfg,
            &[
                Mitigation::DEFAULT,
                Mitigation {
                    steer_single_core: true,
                    ..Mitigation::DEFAULT
                },
            ],
        ))
    });

    bench("fig12_one_app", 3, || {
        clear();
        black_box(fig12::fig12_with(&cfg, &["x264"]))
    });

    bench("pareto_two_combos", 3, || {
        clear();
        black_box(pareto::pareto_with(
            &cfg,
            &CPU,
            &["ubench"],
            &[
                Mitigation::DEFAULT,
                Mitigation {
                    coalesce: true,
                    ..Mitigation::DEFAULT
                },
            ],
        ))
    });
}
