//! Criterion timings for each experiment family, one benchmark per paper
//! artifact (scaled-down workload subsets — the point is tracking the
//! harness's own cost, not regenerating the figures; that is the
//! `figures` bench target).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hiss::experiments::{fig12, fig3, fig4, fig5, fig6, fig9, pareto, tables};
use hiss::{Mitigation, SystemConfig};

const CPU: [&str; 2] = ["x264", "raytrace"];
const GPU: [&str; 2] = ["sssp", "ubench"];

fn bench_experiments(c: &mut Criterion) {
    let cfg = SystemConfig::a10_7850k();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1(&cfg))));

    g.bench_function("fig3_cell_pair", |b| {
        b.iter(|| black_box(fig3::fig3_with(&cfg, &["x264"], &["ubench"])))
    });

    g.bench_function("fig4_subset", |b| {
        b.iter(|| black_box(fig4::fig4_with(&cfg, &["bfs", "ubench"])))
    });

    g.bench_function("fig5_subset", |b| {
        b.iter(|| black_box(fig5::fig5_with(&cfg, &CPU)))
    });

    g.bench_function("fig6_monolithic_subset", |b| {
        b.iter(|| {
            black_box(fig6::fig6_technique(
                &cfg,
                fig6::Technique::MonolithicBottomHalf,
                &CPU,
                &GPU,
            ))
        })
    });

    g.bench_function("fig9_two_combos", |b| {
        b.iter(|| {
            black_box(fig9::fig9_with(
                &cfg,
                &[
                    Mitigation::DEFAULT,
                    Mitigation {
                        steer_single_core: true,
                        ..Mitigation::DEFAULT
                    },
                ],
            ))
        })
    });

    g.bench_function("fig12_one_app", |b| {
        b.iter(|| black_box(fig12::fig12_with(&cfg, &["x264"])))
    });

    g.bench_function("pareto_two_combos", |b| {
        b.iter(|| {
            black_box(pareto::pareto_with(
                &cfg,
                &CPU,
                &["ubench"],
                &[
                    Mitigation::DEFAULT,
                    Mitigation {
                        coalesce: true,
                        ..Mitigation::DEFAULT
                    },
                ],
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
