//! Kernel-side counters, mirroring what the paper reads from
//! `/proc/interrupts`, IPI counters, and driver instrumentation.

use hiss_obs::MetricsRegistry;
use hiss_sim::{Histogram, Ns, OnlineStats};

/// Counters for one simulation run.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// SSR interrupts taken, per core (`/proc/interrupts` view; §IV-C
    /// observes the default spreads these evenly across all CPUs).
    pub interrupts_per_core: Vec<u64>,
    /// Inter-processor interrupts sent to wake kernel threads (477×
    /// inflation under the microbenchmark, §IV-C).
    pub ipis: u64,
    /// SSRs fully serviced.
    pub ssrs_serviced: u64,
    /// End-to-end SSR latency (raise → completion).
    pub latency: Histogram,
    /// Requests per interrupt batch (coalescing efficacy).
    pub batch_size: OnlineStats,
    /// QoS deferral episodes applied by the governor.
    pub qos_deferrals: u64,
}

impl KernelStats {
    /// Creates zeroed counters for `num_cores` CPUs.
    pub fn new(num_cores: usize) -> Self {
        KernelStats {
            interrupts_per_core: vec![0; num_cores],
            ipis: 0,
            ssrs_serviced: 0,
            latency: Histogram::new(),
            batch_size: OnlineStats::new(),
            qos_deferrals: 0,
        }
    }

    /// Total SSR interrupts across all cores.
    pub fn total_interrupts(&self) -> u64 {
        self.interrupts_per_core.iter().sum()
    }

    /// Mean end-to-end SSR latency.
    pub fn mean_latency(&self) -> Ns {
        self.latency.mean()
    }

    /// Largest / smallest per-core interrupt count ratio — 1.0 means
    /// perfectly even spreading (§IV-C), large values mean steering.
    pub fn interrupt_imbalance(&self) -> f64 {
        let max = self.interrupts_per_core.iter().copied().max().unwrap_or(0);
        let min = self.interrupts_per_core.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Publishes the `/proc/interrupts`-style view into a metrics
    /// registry under `prefix`: per-core and total interrupt counters,
    /// IPI and service counts, the end-to-end latency histogram, and the
    /// batch-size distribution.
    pub fn publish(&self, reg: &mut MetricsRegistry, prefix: &str) {
        for (core, &n) in self.interrupts_per_core.iter().enumerate() {
            reg.counter(format!("{prefix}.interrupts.core{core}"), n);
        }
        reg.counter(
            format!("{prefix}.interrupts.total"),
            self.total_interrupts(),
        );
        reg.counter(format!("{prefix}.ipis"), self.ipis);
        reg.counter(format!("{prefix}.ssrs_serviced"), self.ssrs_serviced);
        reg.counter(format!("{prefix}.qos_deferrals"), self.qos_deferrals);
        reg.histogram(format!("{prefix}.latency"), &self.latency);
        reg.stats(&format!("{prefix}.batch"), &self.batch_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let s = KernelStats::new(4);
        assert_eq!(s.total_interrupts(), 0);
        assert_eq!(s.ipis, 0);
        assert_eq!(s.mean_latency(), Ns::ZERO);
        assert_eq!(s.interrupt_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_detects_steering() {
        let mut s = KernelStats::new(4);
        s.interrupts_per_core = vec![100, 100, 100, 100];
        assert_eq!(s.interrupt_imbalance(), 1.0);
        s.interrupts_per_core = vec![400, 0, 0, 0];
        assert!(s.interrupt_imbalance().is_infinite());
        s.interrupts_per_core = vec![300, 50, 25, 25];
        assert_eq!(s.interrupt_imbalance(), 12.0);
    }

    #[test]
    fn total_sums_cores() {
        let mut s = KernelStats::new(2);
        s.interrupts_per_core = vec![3, 9];
        assert_eq!(s.total_interrupts(), 12);
    }

    #[test]
    fn publish_exports_per_core_and_aggregate_counters() {
        let mut s = KernelStats::new(2);
        s.interrupts_per_core = vec![3, 9];
        s.ipis = 477;
        s.ssrs_serviced = 11;
        s.qos_deferrals = 2;
        s.latency.record(Ns::from_micros(25));
        s.batch_size.push(4.0);
        s.batch_size.push(8.0);
        let mut reg = MetricsRegistry::new();
        s.publish(&mut reg, "kernel");
        assert_eq!(reg.counter_value("kernel.interrupts.core0"), Some(3));
        assert_eq!(reg.counter_value("kernel.interrupts.core1"), Some(9));
        assert_eq!(reg.counter_value("kernel.interrupts.total"), Some(12));
        assert_eq!(reg.counter_value("kernel.ipis"), Some(477));
        assert_eq!(reg.counter_value("kernel.ssrs_serviced"), Some(11));
        assert_eq!(reg.counter_value("kernel.qos_deferrals"), Some(2));
        assert_eq!(reg.counter_value("kernel.batch.count"), Some(2));
        assert_eq!(reg.gauge_value("kernel.batch.mean"), Some(6.0));
        match reg.get("kernel.latency") {
            Some(hiss_obs::MetricValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("expected latency histogram, got {other:?}"),
        }
    }
}
