//! Kernel-side counters, mirroring what the paper reads from
//! `/proc/interrupts`, IPI counters, and driver instrumentation.

use hiss_sim::{Histogram, Ns, OnlineStats};

/// Counters for one simulation run.
#[derive(Debug, Clone)]
pub struct KernelStats {
    /// SSR interrupts taken, per core (`/proc/interrupts` view; §IV-C
    /// observes the default spreads these evenly across all CPUs).
    pub interrupts_per_core: Vec<u64>,
    /// Inter-processor interrupts sent to wake kernel threads (477×
    /// inflation under the microbenchmark, §IV-C).
    pub ipis: u64,
    /// SSRs fully serviced.
    pub ssrs_serviced: u64,
    /// End-to-end SSR latency (raise → completion).
    pub latency: Histogram,
    /// Requests per interrupt batch (coalescing efficacy).
    pub batch_size: OnlineStats,
    /// QoS deferral episodes applied by the governor.
    pub qos_deferrals: u64,
}

impl KernelStats {
    /// Creates zeroed counters for `num_cores` CPUs.
    pub fn new(num_cores: usize) -> Self {
        KernelStats {
            interrupts_per_core: vec![0; num_cores],
            ipis: 0,
            ssrs_serviced: 0,
            latency: Histogram::new(),
            batch_size: OnlineStats::new(),
            qos_deferrals: 0,
        }
    }

    /// Total SSR interrupts across all cores.
    pub fn total_interrupts(&self) -> u64 {
        self.interrupts_per_core.iter().sum()
    }

    /// Mean end-to-end SSR latency.
    pub fn mean_latency(&self) -> Ns {
        self.latency.mean()
    }

    /// Largest / smallest per-core interrupt count ratio — 1.0 means
    /// perfectly even spreading (§IV-C), large values mean steering.
    pub fn interrupt_imbalance(&self) -> f64 {
        let max = self.interrupts_per_core.iter().copied().max().unwrap_or(0);
        let min = self.interrupts_per_core.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_on_creation() {
        let s = KernelStats::new(4);
        assert_eq!(s.total_interrupts(), 0);
        assert_eq!(s.ipis, 0);
        assert_eq!(s.mean_latency(), Ns::ZERO);
        assert_eq!(s.interrupt_imbalance(), 1.0);
    }

    #[test]
    fn imbalance_detects_steering() {
        let mut s = KernelStats::new(4);
        s.interrupts_per_core = vec![100, 100, 100, 100];
        assert_eq!(s.interrupt_imbalance(), 1.0);
        s.interrupts_per_core = vec![400, 0, 0, 0];
        assert!(s.interrupt_imbalance().is_infinite());
        s.interrupts_per_core = vec![300, 50, 25, 25];
        assert_eq!(s.interrupt_imbalance(), 12.0);
    }

    #[test]
    fn total_sums_cores() {
        let mut s = KernelStats::new(2);
        s.interrupts_per_core = vec![3, 9];
        assert_eq!(s.total_interrupts(), 12);
    }
}
