//! CPU-time cost model of the SSR handling chain.

use hiss_gpu::SsrKind;
use hiss_sim::Ns;

/// Calibrated CPU costs of each stage of the SSR pipeline.
///
/// Defaults are calibrated so that the simulated A10-7850K reproduces the
/// paper's headline interference magnitudes (see `DESIGN.md` §5 and the
/// calibration test suite). All fields are public so ablation studies can
/// sweep them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandlerCosts {
    /// Fixed top-half cost per interrupt (hard-IRQ entry, IOMMU ACK).
    pub top_half_base: Ns,
    /// Additional top-half cost per drained PPR entry.
    pub top_half_per_req: Ns,
    /// Cost on the *receiving* core of an inter-processor interrupt.
    pub ipi_receive: Ns,
    /// Scheduling latency to wake the bottom-half kthread even on an idle
    /// core (run-queue insertion, context switch). The monolithic
    /// mitigation exists to eliminate exactly this.
    pub bh_wake_delay: Ns,
    /// Fixed bottom-half cost per batch (read request buffer, classify).
    pub bottom_half_base: Ns,
    /// Bottom-half pre-processing cost per request.
    pub bottom_half_per_req: Ns,
    /// Latency from work-queue insertion to the worker picking the item
    /// up (per-batch, overlapped for subsequent items).
    pub worker_wake_delay: Ns,
    /// Completion notification cost appended to each service (step ⑥).
    pub completion_notify: Ns,
    /// Per-batch cost of the QoS governor's cycle accounting (the §VI
    /// background thread), billed only when the governor is enabled.
    pub qos_accounting: Ns,
}

impl Default for HandlerCosts {
    fn default() -> Self {
        HandlerCosts {
            top_half_base: Ns::from_nanos(1_500),
            top_half_per_req: Ns::from_nanos(250),
            ipi_receive: Ns::from_nanos(700),
            bh_wake_delay: Ns::from_micros(6),
            bottom_half_base: Ns::from_nanos(2_000),
            bottom_half_per_req: Ns::from_nanos(500),
            worker_wake_delay: Ns::from_micros(2),
            completion_notify: Ns::from_nanos(400),
            qos_accounting: Ns::from_nanos(150),
        }
    }
}

impl HandlerCosts {
    /// Top-half duration for a batch of `n` requests.
    pub fn top_half(&self, n: usize) -> Ns {
        self.top_half_base + self.top_half_per_req * n as u64
    }

    /// Bottom-half duration for a batch of `n` requests.
    pub fn bottom_half(&self, n: usize) -> Ns {
        self.bottom_half_base + self.bottom_half_per_req * n as u64
    }

    /// Worker-thread service time for one request of the given kind,
    /// including the completion notification (paper Table I: complexity
    /// varies from "little more than informing the receiving process" for
    /// signals up to file-system and migration work).
    pub fn worker(&self, kind: SsrKind) -> Ns {
        let service = match kind {
            SsrKind::Signal => Ns::from_nanos(1_200),
            SsrKind::SoftPageFault => Ns::from_micros(2),
            SsrKind::MemoryAlloc => Ns::from_micros(9),
            SsrKind::PageMigration => Ns::from_micros(28),
            SsrKind::FileSystem => Ns::from_micros(35),
            SsrKind::HardPageFault => Ns::from_micros(45),
        };
        service + self.completion_notify
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_costs_scale_linearly() {
        let c = HandlerCosts::default();
        assert_eq!(c.top_half(0), c.top_half_base);
        assert_eq!(c.top_half(10) - c.top_half(0), c.top_half_per_req * 10);
        assert_eq!(
            c.bottom_half(4) - c.bottom_half(1),
            c.bottom_half_per_req * 3
        );
    }

    #[test]
    fn complexity_ordering_matches_table1() {
        let c = HandlerCosts::default();
        // Signals are the cheapest; hard faults and filesystem the most
        // expensive; soft faults in between (Table I).
        assert!(c.worker(SsrKind::Signal) < c.worker(SsrKind::SoftPageFault));
        assert!(c.worker(SsrKind::SoftPageFault) < c.worker(SsrKind::PageMigration));
        assert!(c.worker(SsrKind::PageMigration) < c.worker(SsrKind::FileSystem));
        assert!(c.worker(SsrKind::FileSystem) < c.worker(SsrKind::HardPageFault));
    }

    #[test]
    fn worker_includes_completion() {
        let c = HandlerCosts::default();
        assert_eq!(
            c.worker(SsrKind::Signal),
            Ns::from_nanos(1_200) + c.completion_notify
        );
    }
}
