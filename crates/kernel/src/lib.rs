//! # hiss-kernel — operating-system substrate
//!
//! The host-side half of the SSR pipeline (paper Fig. 1, steps 3–6): what
//! the Linux kernel and the `amd_iommu_v2` driver do once the IOMMU (or a
//! GPU doorbell) interrupts a CPU.
//!
//! ```text
//! ③ top half      — hard-IRQ context on the interrupted core; ACKs the
//!                   IOMMU, wakes the bottom-half kthread (IPI if it lives
//!                   on another core)
//! ④ bottom half   — kthread; drains the PPR log, pre-processes, queues
//!                   one work item per request
//! ⑤ worker thread — performs the actual service (page fault, signal, …);
//!                   this is where the QoS governor gates (paper §VI)
//! ⑥ completion    — notify the IOMMU/GPU
//! ```
//!
//! [`Kernel`] is an *open* state machine: it owns kernel-side scheduling
//! state (kthread placement, per-core kernel occupancy horizons, the work
//! queue tail) and, for each interrupt, emits a list of [`KernelOutput`]s
//! — core-occupancy intervals, IPIs, and SSR completions — that the SoC
//! event loop turns into billing and GPU notifications. Host specifics
//! (is a core running user work? how long does preemption take? is it
//! asleep?) are abstracted behind [`CoreHost`].
//!
//! The three §V mitigations appear here and in `hiss-iommu`:
//!
//! - interrupt steering: IOMMU-side (`hiss_iommu::MsiSteering`), plus
//!   [`KernelConfig::bh_affinity`] to pin the bottom-half kthread to the
//!   steered core as the paper's setup does,
//! - interrupt coalescing: IOMMU-side; the kernel amortises per-batch
//!   costs automatically,
//! - monolithic bottom half ([`KernelConfig::monolithic_bottom_half`]):
//!   folds step ④ into the top half, trading hard-IRQ time for the
//!   elimination of the IPI and the kthread scheduling delay.

pub mod costs;
pub mod kernel;
pub mod placement;
pub mod stats;

pub use costs::HandlerCosts;
pub use kernel::{CoreHost, Kernel, KernelConfig, KernelOutput};
pub use placement::Kthread;
pub use stats::KernelStats;
