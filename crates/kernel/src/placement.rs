//! Kernel-thread placement.
//!
//! The bottom-half kthread and the SSR worker thread are ordinary kernel
//! threads: the scheduler's wake-balancing decides where they run. The
//! policy modelled here mirrors CFS wake placement at the granularity the
//! experiments need:
//!
//! 1. a hard affinity wins (used when the paper pins the bottom half to
//!    the interrupt-steered core),
//! 2. a thread whose current core has no user work stays put (cache
//!    affinity),
//! 3. otherwise it migrates to the lowest-numbered core without user
//!    work, if any,
//! 4. otherwise it stays and contends with the user thread there —
//!    paying that application's preemption latency.

use hiss_cpu::CoreId;

use crate::kernel::CoreHost;

/// A floating kernel thread (bottom half or worker).
#[derive(Debug, Clone)]
pub struct Kthread {
    name: &'static str,
    home: CoreId,
    affinity: Option<CoreId>,
    migrations: u64,
    /// Rotation cursor used when every core is user-busy: CFS load
    /// balancing keeps moving the kthread so no single application
    /// thread absorbs all of its CPU time.
    rotate: usize,
}

impl Kthread {
    /// Creates a kthread currently resident on `home`.
    pub fn new(name: &'static str, home: CoreId) -> Self {
        Kthread {
            name,
            home,
            affinity: None,
            migrations: 0,
            rotate: home.0,
        }
    }

    /// Pins the thread to `core` (or clears the pin with `None`).
    pub fn set_affinity(&mut self, core: Option<CoreId>) {
        self.affinity = core;
    }

    /// The thread's name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Where the thread currently lives.
    pub fn home(&self) -> CoreId {
        self.home
    }

    /// How many times the thread migrated between cores.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Chooses the core this thread will run on for its next activation
    /// and updates its home.
    pub fn place(&mut self, host: &dyn CoreHost) -> CoreId {
        let chosen = self.choose(host);
        if chosen != self.home {
            self.migrations += 1;
            self.home = chosen;
        }
        chosen
    }

    fn choose(&mut self, host: &dyn CoreHost) -> CoreId {
        if let Some(core) = self.affinity {
            assert!(
                core.0 < host.num_cores(),
                "kthread {} pinned to out-of-range core {core}",
                self.name
            );
            // Core reservation outranks even a hard pin: a reserved
            // core must never run floating kernel threads.
            if !host.reserved(core) {
                return core;
            }
        }
        if !host.user_active(self.home) && !host.reserved(self.home) {
            return self.home;
        }
        for c in 0..host.num_cores() {
            let core = CoreId(c);
            if !host.user_active(core) && !host.reserved(core) {
                return core;
            }
        }
        // Every eligible core has user work: rotate (CFS load balancing)
        // over the non-reserved cores so the kthread's CPU consumption
        // spreads over all best-effort application threads instead of
        // starving one of them.
        for _ in 0..host.num_cores() {
            self.rotate = (self.rotate + 1) % host.num_cores();
            if !host.reserved(CoreId(self.rotate)) {
                return CoreId(self.rotate);
            }
        }
        CoreId(self.rotate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiss_sim::Ns;

    /// Test host with a fixed set of user-busy cores.
    struct FakeHost {
        busy: Vec<bool>,
    }

    impl CoreHost for FakeHost {
        fn num_cores(&self) -> usize {
            self.busy.len()
        }
        fn user_active(&self, core: CoreId) -> bool {
            self.busy[core.0]
        }
        fn preempt_delay(&self, _core: CoreId) -> Ns {
            Ns::from_micros(20)
        }
        fn wake_delay(&self, _core: CoreId) -> Ns {
            Ns::ZERO
        }
    }

    /// Test host whose first `reserved` cores are a critical partition.
    struct ReservingHost {
        busy: Vec<bool>,
        reserved: usize,
    }

    impl CoreHost for ReservingHost {
        fn num_cores(&self) -> usize {
            self.busy.len()
        }
        fn user_active(&self, core: CoreId) -> bool {
            self.busy[core.0]
        }
        fn preempt_delay(&self, _core: CoreId) -> Ns {
            Ns::from_micros(20)
        }
        fn wake_delay(&self, _core: CoreId) -> Ns {
            Ns::ZERO
        }
        fn reserved(&self, core: CoreId) -> bool {
            core.0 < self.reserved
        }
    }

    #[test]
    fn affinity_overrides_everything() {
        let host = FakeHost {
            busy: vec![true, true, true, true],
        };
        let mut t = Kthread::new("bh", CoreId(1));
        t.set_affinity(Some(CoreId(3)));
        assert_eq!(t.place(&host), CoreId(3));
        assert_eq!(t.home(), CoreId(3));
    }

    #[test]
    fn idle_home_means_no_migration() {
        let host = FakeHost {
            busy: vec![true, false, true, true],
        };
        let mut t = Kthread::new("bh", CoreId(1));
        assert_eq!(t.place(&host), CoreId(1));
        assert_eq!(t.migrations(), 0);
    }

    #[test]
    fn busy_home_migrates_to_idle_core() {
        let host = FakeHost {
            busy: vec![true, true, false, false],
        };
        let mut t = Kthread::new("worker", CoreId(0));
        assert_eq!(t.place(&host), CoreId(2));
        assert_eq!(t.migrations(), 1);
        // Second placement: stays on its new idle home.
        assert_eq!(t.place(&host), CoreId(2));
        assert_eq!(t.migrations(), 1);
    }

    #[test]
    fn all_busy_rotates_over_cores() {
        let host = FakeHost {
            busy: vec![true, true, true, true],
        };
        let mut t = Kthread::new("worker", CoreId(2));
        let seq: Vec<usize> = (0..8).map(|_| t.place(&host).0).collect();
        assert_eq!(seq, vec![3, 0, 1, 2, 3, 0, 1, 2]);
        assert!(t.migrations() > 0);
    }

    #[test]
    fn reserved_cores_never_receive_kernel_threads() {
        // Core 0 reserved and idle; the thread must skip it everywhere:
        // as an affinity target, as an idle home, and in rotation.
        let host = ReservingHost {
            busy: vec![false, true, true, true],
            reserved: 1,
        };
        let mut t = Kthread::new("worker", CoreId(0));
        t.set_affinity(Some(CoreId(0)));
        assert_ne!(t.place(&host), CoreId(0), "reservation outranks affinity");
        t.set_affinity(None);
        t.home = CoreId(0);
        assert_ne!(t.place(&host), CoreId(0), "idle reserved home abandoned");
        // All best-effort cores busy: rotation covers only cores 1..4.
        let seq: Vec<usize> = (0..6).map(|_| t.place(&host).0).collect();
        assert!(seq.iter().all(|&c| c != 0), "{seq:?}");
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn bad_affinity_panics() {
        let host = FakeHost {
            busy: vec![true, true],
        };
        let mut t = Kthread::new("bh", CoreId(0));
        t.set_affinity(Some(CoreId(5)));
        t.place(&host);
    }
}
