//! The SSR-handling state machine (Fig. 1 steps 3–6).

use hiss_cpu::{CoreId, TimeCategory};
use hiss_gpu::SsrRequest;
use hiss_qos::{Gate, Governor, QosParams};
use hiss_sim::Ns;

use crate::costs::HandlerCosts;
use crate::placement::Kthread;
use crate::stats::KernelStats;

/// What the kernel model needs to know about the host SoC.
///
/// Implemented by the SoC event loop; kept minimal so the kernel is
/// testable with a fake.
pub trait CoreHost {
    /// Number of CPU cores.
    fn num_cores(&self) -> usize;
    /// `true` if a user thread currently has runnable work on `core`.
    fn user_active(&self, core: CoreId) -> bool;
    /// Scheduling latency for a kernel thread to preempt the user thread
    /// on `core` (application-dependent: CPU-bound PARSEC threads hold
    /// the core longer than interactive ones).
    fn preempt_delay(&self, core: CoreId) -> Ns;
    /// Extra wake latency if `core` is currently asleep (CC6 exit), else
    /// zero. This is why SSRs to sleeping cores can be *slower* than to
    /// busy ones (paper Fig. 3b values above 1.0).
    fn wake_delay(&self, core: CoreId) -> Ns;
    /// `true` if `core` is reserved for critical work — floating kernel
    /// threads must not land there (mixed-criticality core reservation;
    /// no core is reserved unless the host says otherwise).
    fn reserved(&self, _core: CoreId) -> bool {
        false
    }
}

/// Kernel configuration: costs, mitigations, QoS.
#[derive(Debug, Clone, Default)]
pub struct KernelConfig {
    /// Stage cost model.
    pub costs: HandlerCosts,
    /// §V-C: run the bottom-half pre-processing inside the top half
    /// (hard-IRQ context), eliminating the IPI + kthread wake.
    pub monolithic_bottom_half: bool,
    /// Pin the bottom-half kthread to one core (the paper's single-core
    /// steering configuration pins it to the steered core).
    pub bh_affinity: Option<CoreId>,
    /// §VI: enable the QoS governor with these parameters.
    pub qos: Option<QosParams>,
}

/// One observable consequence of kernel activity, emitted in
/// non-decreasing `start`/`at` order *per core* (global order may
/// interleave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelOutput {
    /// A core executes kernel code during `[start, start + dur)`.
    Occupy {
        /// Which core.
        core: CoreId,
        /// Interval start.
        start: Ns,
        /// Interval length (wall time; for a shared interval only half
        /// of it is kernel CPU time).
        dur: Ns,
        /// Ledger category (top half / IPI / bottom half / worker).
        category: TimeCategory,
        /// `true` when this is thread-context kernel work fair-sharing
        /// the core with an active user thread (CFS 50/50): the user
        /// thread makes progress during half of the interval.
        shared: bool,
    },
    /// An IPI was sent (receiver cost is emitted as a separate `Occupy`).
    Ipi {
        /// Sending core.
        from: CoreId,
        /// Receiving core.
        to: CoreId,
        /// Send time.
        at: Ns,
    },
    /// An SSR finished service; the SoC forwards this to the GPU.
    SsrComplete {
        /// The completed request.
        request: SsrRequest,
        /// Completion time.
        at: Ns,
    },
}

/// The kernel-side SSR pipeline model.
///
/// See the crate docs for the architecture; the core entry point is
/// [`Kernel::on_interrupt`].
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    bh: Kthread,
    worker: Kthread,
    /// Per-core horizon of committed kernel occupancy (kernel work on a
    /// core is serialised; the SoC bills user/idle time around it).
    busy_until: Vec<Ns>,
    /// When the (single) worker thread finishes its current queue.
    worker_tail: Ns,
    governor: Option<Governor>,
    stats: KernelStats,
}

impl Kernel {
    /// Creates the kernel model for `num_cores` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(config: KernelConfig, num_cores: usize) -> Self {
        assert!(num_cores > 0, "kernel needs at least one core");
        let mut bh = Kthread::new("iommu-bh", CoreId(1 % num_cores));
        bh.set_affinity(config.bh_affinity);
        let worker = Kthread::new("ssr-worker", CoreId(2 % num_cores));
        let governor = config.qos.map(|p| Governor::new(p, num_cores));
        Kernel {
            config,
            bh,
            worker,
            busy_until: vec![Ns::ZERO; num_cores],
            worker_tail: Ns::ZERO,
            governor,
            stats: KernelStats::new(num_cores),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The QoS governor, if enabled.
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_ref()
    }

    /// Commits a kernel occupancy interval: bumps the core horizon,
    /// records the cycles with the QoS governor, emits the output.
    fn occupy(
        &mut self,
        out: &mut Vec<KernelOutput>,
        core: CoreId,
        start: Ns,
        dur: Ns,
        category: TimeCategory,
    ) -> Ns {
        self.occupy_opt(out, core, start, dur, category, false)
    }

    fn occupy_opt(
        &mut self,
        out: &mut Vec<KernelOutput>,
        core: CoreId,
        start: Ns,
        dur: Ns,
        category: TimeCategory,
        shared: bool,
    ) -> Ns {
        let end = start + dur;
        self.busy_until[core.0] = self.busy_until[core.0].max(end);
        if let Some(gov) = &mut self.governor {
            // Only actual kernel CPU time counts toward the QoS budget.
            gov.record(start, if shared { dur / 2 } else { dur });
        }
        out.push(KernelOutput::Occupy {
            core,
            start,
            dur,
            category,
            shared,
        });
        end
    }

    /// Handles one SSR interrupt delivered to `irq_core` at `now` with a
    /// drained batch of requests, returning every consequence of the full
    /// handling chain (already scheduled in time).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty — an interrupt with no logged request
    /// indicates an IOMMU-model bug.
    pub fn on_interrupt(
        &mut self,
        host: &dyn CoreHost,
        irq_core: CoreId,
        batch: Vec<SsrRequest>,
        now: Ns,
    ) -> Vec<KernelOutput> {
        let mut out = Vec::new();
        self.on_interrupt_into(host, irq_core, &batch, now, &mut out);
        out
    }

    /// Allocation-free variant of [`Kernel::on_interrupt`]: clears `out`
    /// and fills it with the handling chain, reusing its capacity. The
    /// SoC event loop calls this on every interrupt with owned scratch
    /// buffers, so steady-state interrupt delivery does not allocate.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty — an interrupt with no logged request
    /// indicates an IOMMU-model bug.
    pub fn on_interrupt_into(
        &mut self,
        host: &dyn CoreHost,
        irq_core: CoreId,
        batch: &[SsrRequest],
        now: Ns,
        out: &mut Vec<KernelOutput>,
    ) {
        assert!(!batch.is_empty(), "interrupt with empty PPR batch");
        let n = batch.len();
        let costs = self.config.costs;
        self.stats.interrupts_per_core[irq_core.0] += 1;
        self.stats.batch_size.push(n as f64);
        out.clear();
        out.reserve(2 * n + 4);

        // --- ③ top half: hard-IRQ context on the interrupted core ------
        let th_start = (now + host.wake_delay(irq_core)).max(self.busy_until[irq_core.0]);
        let mut th_dur = costs.top_half(n);
        if self.config.monolithic_bottom_half {
            // ④ folded into the hard-IRQ context (§V-C).
            th_dur += costs.bottom_half(n);
        }
        let th_end = self.occupy(out, irq_core, th_start, th_dur, TimeCategory::TopHalf);

        // --- ④ bottom half kthread (unless monolithic) ------------------
        let (queue_core, queue_ready) = if self.config.monolithic_bottom_half {
            (irq_core, th_end)
        } else {
            let bh_core = self.bh.place(host);
            // A kthread that is still draining earlier work is already
            // awake: new work simply appends to it — no IPI, no wake
            // latency. Only a sleeping/idle kthread pays the wake path.
            let kthread_backlogged = self.busy_until[bh_core.0] > th_end;
            let start = if kthread_backlogged {
                self.busy_until[bh_core.0]
            } else {
                let mut ready = th_end;
                if bh_core != irq_core {
                    // 3a: IPI to wake the kthread on its core.
                    self.stats.ipis += 1;
                    out.push(KernelOutput::Ipi {
                        from: irq_core,
                        to: bh_core,
                        at: th_end,
                    });
                    let ipi_start = th_end + host.wake_delay(bh_core);
                    ready = self.occupy(
                        out,
                        bh_core,
                        ipi_start,
                        costs.ipi_receive,
                        TimeCategory::Ipi,
                    );
                }
                let mut start = ready + costs.bh_wake_delay;
                if host.user_active(bh_core) {
                    start += host.preempt_delay(bh_core);
                }
                start
            };
            // Thread-context work fair-shares a user-busy core (CFS):
            // twice the wall time, half of it user progress.
            let bh_shared = host.user_active(bh_core);
            let bh_wall = if bh_shared {
                costs.bottom_half(n) * 2
            } else {
                costs.bottom_half(n)
            };
            let end = self.occupy_opt(
                out,
                bh_core,
                start,
                bh_wall,
                TimeCategory::BottomHalf,
                bh_shared,
            );
            (bh_core, end)
        };

        // --- ⑤ worker thread: one work item per request -----------------
        let w_core = self.worker.place(host);
        // Same rule: a worker still draining its queue is awake; only an
        // idle worker pays the wake latency (and an IPI if remote).
        let worker_backlogged = self.worker_tail > queue_ready;
        let mut t = if worker_backlogged {
            self.worker_tail.max(self.busy_until[w_core.0])
        } else {
            let mut ready = queue_ready + costs.worker_wake_delay;
            if w_core != queue_core {
                self.stats.ipis += 1;
                out.push(KernelOutput::Ipi {
                    from: queue_core,
                    to: w_core,
                    at: queue_ready,
                });
                let ipi_start = queue_ready + host.wake_delay(w_core);
                let ipi_end =
                    self.occupy(out, w_core, ipi_start, costs.ipi_receive, TimeCategory::Ipi);
                ready = ready.max(ipi_end);
            }
            if host.user_active(w_core) {
                ready += host.preempt_delay(w_core);
            }
            ready.max(self.busy_until[w_core.0])
        };
        // §VI bookkeeping: the governor's cycle-accounting thread runs
        // alongside the worker before it picks up the batch.
        if self.governor.is_some() {
            let start = t.max(self.busy_until[w_core.0]);
            t = self.occupy(
                out,
                w_core,
                start,
                costs.qos_accounting,
                TimeCategory::QosAccounting,
            );
        }
        for &request in batch {
            // §VI: the modified worker thread consults the governor
            // before processing each SSR (Fig. 10/11).
            if let Some(gov) = &mut self.governor {
                loop {
                    match gov.gate(t) {
                        Gate::Proceed => break,
                        Gate::Defer(until) => {
                            self.stats.qos_deferrals += 1;
                            t = until;
                        }
                    }
                }
            }
            let w_shared = host.user_active(w_core);
            let dur = if w_shared {
                costs.worker(request.kind) * 2
            } else {
                costs.worker(request.kind)
            };
            let start = t.max(self.busy_until[w_core.0]);
            let end = self.occupy_opt(out, w_core, start, dur, TimeCategory::Worker, w_shared);
            // --- ⑥ completion --------------------------------------------
            out.push(KernelOutput::SsrComplete { request, at: end });
            self.stats.ssrs_serviced += 1;
            self.stats.latency.record(end - request.raised_at);
            t = end;
        }
        self.worker_tail = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiss_gpu::{SsrId, SsrKind};

    struct FakeHost {
        busy: Vec<bool>,
        preempt: Ns,
        asleep: Vec<bool>,
        wake: Ns,
    }

    impl FakeHost {
        fn idle(cores: usize) -> Self {
            FakeHost {
                busy: vec![false; cores],
                preempt: Ns::from_micros(25),
                asleep: vec![false; cores],
                wake: Ns::from_micros(75),
            }
        }
        fn all_busy(cores: usize) -> Self {
            FakeHost {
                busy: vec![true; cores],
                ..Self::idle(cores)
            }
        }
    }

    impl CoreHost for FakeHost {
        fn num_cores(&self) -> usize {
            self.busy.len()
        }
        fn user_active(&self, core: CoreId) -> bool {
            self.busy[core.0]
        }
        fn preempt_delay(&self, _core: CoreId) -> Ns {
            self.preempt
        }
        fn wake_delay(&self, core: CoreId) -> Ns {
            if self.asleep[core.0] {
                self.wake
            } else {
                Ns::ZERO
            }
        }
    }

    fn req(id: u64, at: Ns) -> SsrRequest {
        SsrRequest {
            id: SsrId(id),
            gpu: 0,
            kind: SsrKind::SoftPageFault,
            page: None,
            raised_at: at,
            blocking: false,
        }
    }

    fn kernel(config: KernelConfig) -> Kernel {
        Kernel::new(config, 4)
    }

    fn completions(out: &[KernelOutput]) -> Vec<Ns> {
        out.iter()
            .filter_map(|o| match o {
                KernelOutput::SsrComplete { at, .. } => Some(*at),
                _ => None,
            })
            .collect()
    }

    fn occupies(out: &[KernelOutput]) -> Vec<(CoreId, Ns, Ns, TimeCategory)> {
        out.iter()
            .filter_map(|o| match o {
                KernelOutput::Occupy {
                    core,
                    start,
                    dur,
                    category,
                    ..
                } => Some((*core, *start, *dur, *category)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn default_chain_hits_three_stages() {
        let mut k = kernel(KernelConfig::default());
        let host = FakeHost::idle(4);
        let out = k.on_interrupt(&host, CoreId(0), vec![req(0, Ns::ZERO)], Ns::ZERO);
        let occ = occupies(&out);
        let cats: Vec<TimeCategory> = occ.iter().map(|(_, _, _, c)| *c).collect();
        assert!(cats.contains(&TimeCategory::TopHalf));
        assert!(cats.contains(&TimeCategory::BottomHalf));
        assert!(cats.contains(&TimeCategory::Worker));
        assert_eq!(k.stats().ssrs_serviced, 1);
        assert_eq!(completions(&out).len(), 1);
    }

    #[test]
    fn cross_core_bottom_half_sends_ipi() {
        let mut k = kernel(KernelConfig::default());
        let host = FakeHost::idle(4);
        // bh kthread homes on core 1; interrupt on core 0 → IPI.
        let out = k.on_interrupt(&host, CoreId(0), vec![req(0, Ns::ZERO)], Ns::ZERO);
        assert!(k.stats().ipis >= 1);
        assert!(out.iter().any(|o| matches!(
            o,
            KernelOutput::Ipi {
                from: CoreId(0),
                to: CoreId(1),
                ..
            }
        )));
    }

    #[test]
    fn monolithic_eliminates_bh_ipi_and_is_faster() {
        let host = FakeHost::idle(4);
        let batch = vec![req(0, Ns::ZERO)];

        let mut plain = kernel(KernelConfig::default());
        let out_plain = plain.on_interrupt(&host, CoreId(0), batch.clone(), Ns::ZERO);

        let mut mono = kernel(KernelConfig {
            monolithic_bottom_half: true,
            ..KernelConfig::default()
        });
        let out_mono = mono.on_interrupt(&host, CoreId(0), batch, Ns::ZERO);

        // No bottom-half category and no bh IPI in the monolithic chain.
        assert!(!occupies(&out_mono)
            .iter()
            .any(|(_, _, _, c)| *c == TimeCategory::BottomHalf));
        // Completion is strictly earlier (no kthread wake delay).
        assert!(completions(&out_mono)[0] < completions(&out_plain)[0]);
        // The paper's trade-off: more time in hard-IRQ context.
        let irq_time = |o: &[KernelOutput]| {
            occupies(o)
                .iter()
                .filter(|(_, _, _, c)| *c == TimeCategory::TopHalf)
                .map(|(_, _, d, _)| *d)
                .sum::<Ns>()
        };
        assert!(irq_time(&out_mono) > irq_time(&out_plain));
    }

    #[test]
    fn bh_affinity_pins_bottom_half() {
        let mut k = kernel(KernelConfig {
            bh_affinity: Some(CoreId(0)),
            ..KernelConfig::default()
        });
        let host = FakeHost::idle(4);
        let out = k.on_interrupt(&host, CoreId(0), vec![req(0, Ns::ZERO)], Ns::ZERO);
        let bh = occupies(&out)
            .into_iter()
            .find(|(_, _, _, c)| *c == TimeCategory::BottomHalf)
            .expect("bottom half present");
        assert_eq!(bh.0, CoreId(0));
        // Same core: no bh IPI.
        assert!(!out
            .iter()
            .any(|o| matches!(o, KernelOutput::Ipi { to: CoreId(0), .. })));
    }

    #[test]
    fn busy_cores_delay_service() {
        let batch = vec![req(0, Ns::ZERO)];
        let mut k_idle = kernel(KernelConfig::default());
        let idle_done = completions(&k_idle.on_interrupt(
            &FakeHost::idle(4),
            CoreId(0),
            batch.clone(),
            Ns::ZERO,
        ))[0];
        let mut k_busy = kernel(KernelConfig::default());
        let busy_done =
            completions(&k_busy.on_interrupt(&FakeHost::all_busy(4), CoreId(0), batch, Ns::ZERO))
                [0];
        assert!(
            busy_done > idle_done,
            "busy {busy_done} should exceed idle {idle_done}"
        );
    }

    #[test]
    fn sleeping_core_delays_top_half() {
        let batch = vec![req(0, Ns::ZERO)];
        let mut host = FakeHost::idle(4);
        host.asleep = vec![true, false, false, false];
        let mut k = kernel(KernelConfig::default());
        let out = k.on_interrupt(&host, CoreId(0), batch, Ns::ZERO);
        let th = occupies(&out)
            .into_iter()
            .find(|(_, _, _, c)| *c == TimeCategory::TopHalf)
            .unwrap();
        assert_eq!(th.1, Ns::from_micros(75)); // waited for CC6 exit
    }

    #[test]
    fn batch_amortises_fixed_costs() {
        let host = FakeHost::idle(4);
        let costs = HandlerCosts::default();
        let mut k = kernel(KernelConfig::default());
        let batch: Vec<SsrRequest> = (0..8).map(|i| req(i, Ns::ZERO)).collect();
        let out = k.on_interrupt(&host, CoreId(0), batch, Ns::ZERO);
        // One top half, one bottom half, eight worker items.
        let occ = occupies(&out);
        let count = |cat| occ.iter().filter(|(_, _, _, c)| *c == cat).count();
        assert_eq!(count(TimeCategory::TopHalf), 1);
        assert_eq!(count(TimeCategory::BottomHalf), 1);
        assert_eq!(count(TimeCategory::Worker), 8);
        assert_eq!(k.stats().ssrs_serviced, 8);
        // Worker items are serial: spaced by exactly the service time.
        let done = completions(&out);
        for pair in done.windows(2) {
            assert_eq!(pair[1] - pair[0], costs.worker(SsrKind::SoftPageFault));
        }
    }

    #[test]
    fn worker_queue_is_fifo_across_interrupts() {
        let host = FakeHost::idle(4);
        let mut k = kernel(KernelConfig::default());
        let out1 = k.on_interrupt(&host, CoreId(0), vec![req(0, Ns::ZERO)], Ns::ZERO);
        let t2 = Ns::from_micros(2);
        let out2 = k.on_interrupt(&host, CoreId(1), vec![req(1, t2)], t2);
        assert!(completions(&out2)[0] > completions(&out1)[0]);
    }

    #[test]
    fn qos_defers_under_load() {
        let host = FakeHost::idle(4);
        let mut k = kernel(KernelConfig {
            qos: Some(QosParams::threshold_percent(1.0)),
            ..KernelConfig::default()
        });
        // Hammer the kernel with interrupts; the governor must start
        // deferring once SSR time exceeds 1% of aggregate CPU time.
        let mut now = Ns::ZERO;
        for i in 0..200 {
            k.on_interrupt(
                &host,
                CoreId((i % 4) as usize),
                vec![req(i as u64, now)],
                now,
            );
            now += Ns::from_micros(10);
        }
        assert!(
            k.stats().qos_deferrals > 0,
            "governor never engaged under saturation"
        );
        // Service latency must reflect throttling: far above the
        // unthrottled ~30µs chain.
        assert!(k.stats().mean_latency() > Ns::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "empty PPR batch")]
    fn empty_batch_panics() {
        let host = FakeHost::idle(4);
        kernel(KernelConfig::default()).on_interrupt(&host, CoreId(0), vec![], Ns::ZERO);
    }

    #[test]
    fn latency_accounts_from_raise_time() {
        let host = FakeHost::idle(4);
        let mut k = kernel(KernelConfig::default());
        // Request raised at t=0, interrupt delivered at t=13µs (coalesced).
        let delivered = Ns::from_micros(13);
        let out = k.on_interrupt(&host, CoreId(0), vec![req(0, Ns::ZERO)], delivered);
        let done = completions(&out)[0];
        assert_eq!(k.stats().latency.count(), 1);
        assert!(k.stats().mean_latency() >= done - delivered);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hiss_gpu::{SsrId, SsrKind};
    use proptest::prelude::*;

    struct Host {
        busy: Vec<bool>,
    }
    impl CoreHost for Host {
        fn num_cores(&self) -> usize {
            self.busy.len()
        }
        fn user_active(&self, core: CoreId) -> bool {
            self.busy[core.0]
        }
        fn preempt_delay(&self, _c: CoreId) -> Ns {
            Ns::from_micros(20)
        }
        fn wake_delay(&self, _c: CoreId) -> Ns {
            Ns::ZERO
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Kernel occupancy intervals never overlap on any single core,
        /// and every request completes exactly once, for arbitrary
        /// interrupt streams and configurations.
        #[test]
        fn no_core_overlap_and_full_completion(
            arrivals in proptest::collection::vec((0u64..50, 0usize..4, 1usize..5), 1..40),
            monolithic in any::<bool>(),
            busy_mask in 0u8..16,
            qos in any::<bool>(),
        ) {
            let host = Host {
                busy: (0..4).map(|i| busy_mask & (1 << i) != 0).collect(),
            };
            let mut k = Kernel::new(KernelConfig {
                monolithic_bottom_half: monolithic,
                qos: if qos { Some(hiss_qos::QosParams::threshold_percent(5.0)) } else { None },
                ..KernelConfig::default()
            }, 4);
            let mut now = Ns::ZERO;
            let mut next_id = 0u64;
            let mut intervals: Vec<(usize, Ns, Ns)> = Vec::new();
            let mut completed = 0u64;
            let mut raised = 0u64;
            for (gap_us, core, nreq) in arrivals {
                now += Ns::from_micros(gap_us);
                let batch: Vec<SsrRequest> = (0..nreq).map(|_| {
                    let r = SsrRequest {
                        id: SsrId(next_id), gpu: 0, kind: SsrKind::SoftPageFault,
                        page: None, raised_at: now, blocking: false,
                    };
                    next_id += 1;
                    raised += 1;
                    r
                }).collect();
                for o in k.on_interrupt(&host, CoreId(core), batch, now) {
                    match o {
                        KernelOutput::Occupy { core, start, dur, .. } => {
                            intervals.push((core.0, start, start + dur));
                        }
                        KernelOutput::SsrComplete { .. } => completed += 1,
                        KernelOutput::Ipi { .. } => {}
                    }
                }
            }
            prop_assert_eq!(completed, raised);
            prop_assert_eq!(k.stats().ssrs_serviced, raised);
            // Check pairwise non-overlap per core.
            for core in 0..4 {
                let mut ivs: Vec<(Ns, Ns)> = intervals.iter()
                    .filter(|(c, _, _)| *c == core)
                    .map(|(_, s, e)| (*s, *e))
                    .collect();
                ivs.sort();
                for pair in ivs.windows(2) {
                    prop_assert!(
                        pair[0].1 <= pair[1].0,
                        "overlap on core {}: {:?} then {:?}", core, pair[0], pair[1]
                    );
                }
            }
        }

        /// Completions are monotone in raise order for a single-core
        /// stream (FIFO service discipline).
        #[test]
        fn completions_fifo(n in 1usize..30) {
            let host = Host { busy: vec![false; 4] };
            let mut k = Kernel::new(KernelConfig::default(), 4);
            let mut last = Ns::ZERO;
            for i in 0..n {
                let now = Ns::from_micros(i as u64 * 3);
                let batch = vec![SsrRequest {
                    id: SsrId(i as u64), gpu: 0, kind: SsrKind::SoftPageFault,
                    page: None, raised_at: now, blocking: false,
                }];
                for o in k.on_interrupt(&host, CoreId(i % 4), batch, now) {
                    if let KernelOutput::SsrComplete { at, .. } = o {
                        prop_assert!(at >= last);
                        last = at;
                    }
                }
            }
        }
    }
}
