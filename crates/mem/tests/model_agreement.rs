//! Cross-validation of the fast statistical pollution model against the
//! structural cache and branch-predictor models.
//!
//! The experiment-scale simulations use [`hiss_mem::WarmthModel`]; this
//! test drives the *structural* models with synthetic user/kernel
//! reference streams shaped like the SSR handler pattern and checks that
//! the statistical abstraction reproduces the qualitative behaviour:
//!
//! 1. kernel interruptions raise the user miss rate,
//! 2. more frequent interruptions hurt more than the same kernel time in
//!    one lump,
//! 3. recovery after an interruption is fast relative to the interval
//!    between interrupts at realistic SSR rates,
//! 4. the magnitude ordering of the statistical model's predicted
//!    slowdown matches the structural model's measured miss-rate
//!    inflation across interrupt rates.

use hiss_mem::{Cache, CacheConfig, GsharePredictor, Owner, WarmthModel};
use hiss_sim::{Ns, Rng};

/// Synthetic user application: cycles through a working set that fits in
/// the L1D, with some temporal locality.
struct UserStream {
    rng: Rng,
    working_set_lines: u64,
}

impl UserStream {
    fn next_addr(&mut self) -> u64 {
        // 70% hot eighth, 30% uniform over the working set.
        let line = if self.rng.gen_bool(0.7) {
            self.rng.gen_range(0, self.working_set_lines / 8)
        } else {
            self.rng.gen_range(0, self.working_set_lines)
        };
        line * 64
    }
}

/// Synthetic kernel handler: streams through its own data far from the
/// user's address range.
struct KernelStream {
    rng: Rng,
    footprint_lines: u64,
}

impl KernelStream {
    fn next_addr(&mut self) -> u64 {
        0x4000_0000 + self.rng.gen_range(0, self.footprint_lines) * 64
    }
}

/// Runs `rounds` rounds of (user accesses, kernel accesses) and returns
/// the user-attributed miss rate.
fn structural_miss_rate(user_per_round: usize, kernel_per_round: usize, rounds: usize) -> f64 {
    let mut cache = Cache::new(CacheConfig::default());
    let mut user = UserStream {
        rng: Rng::new(11),
        working_set_lines: 200, // ~12.5 KiB of a 16 KiB cache
    };
    let mut kernel = KernelStream {
        rng: Rng::new(22),
        footprint_lines: 160,
    };
    // Warm up the user stream first.
    for _ in 0..4000 {
        cache.access(user.next_addr(), Owner::User);
    }
    cache.reset_counters();
    let mut user_hits = 0u64;
    let mut user_misses = 0u64;
    for _ in 0..rounds {
        for _ in 0..user_per_round {
            if cache.access(user.next_addr(), Owner::User).is_hit() {
                user_hits += 1;
            } else {
                user_misses += 1;
            }
        }
        for _ in 0..kernel_per_round {
            cache.access(kernel.next_addr(), Owner::Kernel);
        }
    }
    user_misses as f64 / (user_hits + user_misses) as f64
}

#[test]
fn kernel_interruptions_raise_user_miss_rate() {
    let clean = structural_miss_rate(2000, 0, 50);
    let polluted = structural_miss_rate(2000, 400, 50);
    assert!(
        polluted > clean * 1.3,
        "pollution invisible: clean {clean:.4}, polluted {polluted:.4}"
    );
}

#[test]
fn frequent_small_interruptions_hurt_more_than_one_lump() {
    // Same total kernel accesses: 8 rounds of 250 vs 1 round of 2000
    // within the same total user work.
    let spread = structural_miss_rate(500, 250, 64);
    let lumped = structural_miss_rate(4000, 2000, 8);
    assert!(
        spread >= lumped * 0.95,
        "spread {spread:.4} should be at least as harmful as lumped {lumped:.4}"
    );
}

#[test]
fn structural_and_statistical_orderings_agree() {
    // Sweep the interruption intensity; both models must rank the
    // configurations identically.
    let intensities = [0usize, 100, 300, 800];
    let structural: Vec<f64> = intensities
        .iter()
        .map(|&k| structural_miss_rate(2000, k, 40))
        .collect();
    // Statistical equivalent: kernel time proportional to accesses
    // (~1 ns per access at ~1 IPC over 3.7 GHz is close enough for an
    // ordering check), user stretches of 2 µs.
    let statistical: Vec<f64> = intensities
        .iter()
        .map(|&k| {
            let mut w = WarmthModel::new_warm();
            for _ in 0..40 {
                w.on_user(Ns::from_nanos(2000));
                if k > 0 {
                    w.on_kernel(Ns::from_nanos(k as u64));
                }
            }
            w.avg_cache_coldness()
        })
        .collect();
    for i in 1..intensities.len() {
        assert!(
            structural[i] >= structural[i - 1] * 0.98,
            "structural not monotone at {i}: {structural:?}"
        );
        assert!(
            statistical[i] > statistical[i - 1],
            "statistical not monotone at {i}: {statistical:?}"
        );
    }
}

#[test]
fn branch_predictor_pollution_agrees_with_warmth() {
    // Structural: user branches trained, kernel branches interleave.
    let mispredict_rate = |kernel_branches: usize| -> f64 {
        let mut bp = GsharePredictor::new(10);
        let mut rng = Rng::new(5);
        let user_pcs: Vec<u64> = (0..48).map(|i| 0x1000 + i * 16).collect();
        // Train.
        for _ in 0..100 {
            for &pc in &user_pcs {
                bp.execute(pc, true);
            }
        }
        bp.reset_counters();
        let mut measured = 0u64;
        let mut wrong = 0u64;
        for _ in 0..50 {
            for &pc in &user_pcs {
                if !bp.execute(pc, true) {
                    wrong += 1;
                }
                measured += 1;
            }
            for _ in 0..kernel_branches {
                let pc = 0x8_0000 + rng.gen_range(0, 256) * 8;
                bp.execute(pc, rng.gen_bool(0.4));
            }
        }
        wrong as f64 / measured as f64
    };
    let clean = mispredict_rate(0);
    let light = mispredict_rate(64);
    let heavy = mispredict_rate(512);
    assert!(
        light > clean,
        "light pollution invisible: {clean} vs {light}"
    );
    assert!(heavy > light, "heavier pollution should hurt more");

    // Statistical side: same ordering via branch warmth.
    let coldness = |kernel_ns: u64| {
        let mut w = WarmthModel::new_warm();
        for _ in 0..50 {
            w.on_user(Ns::from_nanos(1000));
            if kernel_ns > 0 {
                w.on_kernel(Ns::from_nanos(kernel_ns));
            }
        }
        w.avg_branch_coldness()
    };
    assert!(coldness(64) > coldness(0));
    assert!(coldness(512) > coldness(64));
}
