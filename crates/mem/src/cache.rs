//! Structural set-associative cache model.
//!
//! This is the "ground truth" model used to validate the fast statistical
//! [`WarmthModel`](crate::pollution::WarmthModel): drive it with a user
//! address stream, interleave kernel-handler streams, and observe how user
//! hit rate degrades as kernel lines displace user lines.
//!
//! Each line is tagged with an [`Owner`] so pollution can be measured
//! directly as occupancy stolen from the user working set — the mechanism
//! behind Fig. 5a of the paper.

use std::fmt;

/// Who installed a cache line. The model only needs to distinguish the user
/// application from kernel SSR-handling code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// User-mode application data.
    User,
    /// Kernel data touched while servicing SSRs (handlers, PPR queues,
    /// page-table walks, …).
    Kernel,
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::User => write!(f, "user"),
            Owner::Kernel => write!(f, "kernel"),
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Line present.
    Hit,
    /// Line absent; if it displaced a valid line, the previous owner is
    /// reported so callers can attribute pollution.
    Miss {
        /// Owner of the line that was evicted to make room, if any.
        evicted: Option<Owner>,
    },
}

impl AccessResult {
    /// `true` when the access hit.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// Geometry of a [`Cache`].
///
/// The default mirrors the per-core L1D of the paper's AMD Family 15h
/// "Steamroller" module: 16 KiB, 4-way, 64-byte lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line size, capacity
    /// not divisible into whole sets, or non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(
            lines >= self.ways && lines % self.ways == 0,
            "capacity {} does not divide into whole sets of {} ways",
            self.capacity_bytes,
            self.ways
        );
        lines / self.ways
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    owner: Owner,
    /// LRU stamp: larger = more recently used.
    lru: u64,
    valid: bool,
}

const INVALID: Line = Line {
    tag: 0,
    owner: Owner::User,
    lru: 0,
    valid: false,
};

/// A set-associative, LRU-replacement cache with per-owner occupancy
/// accounting.
///
/// # Example
///
/// ```
/// use hiss_mem::{Cache, CacheConfig, Owner};
///
/// let mut cache = Cache::new(CacheConfig::default());
/// assert!(!cache.access(0x1000, Owner::User).is_hit()); // cold miss
/// assert!(cache.access(0x1000, Owner::User).is_hit());  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
    user_lines: usize,
    kernel_lines: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![INVALID; sets * config.ways],
            clock: 0,
            hits: 0,
            misses: 0,
            user_lines: 0,
            kernel_lines: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes as u64) % self.sets as u64) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.config.line_bytes as u64 * self.sets as u64)
    }

    /// Accesses `addr` on behalf of `owner`, installing the line on a miss.
    pub fn access(&mut self, addr: u64, owner: Owner) -> AccessResult {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            // A hit re-claims ownership (e.g. kernel touching a line the
            // user loaded counts as kernel-resident from now on).
            if line.owner != owner {
                match line.owner {
                    Owner::User => self.user_lines -= 1,
                    Owner::Kernel => self.kernel_lines -= 1,
                }
                match owner {
                    Owner::User => self.user_lines += 1,
                    Owner::Kernel => self.kernel_lines += 1,
                }
                line.owner = owner;
            }
            self.hits += 1;
            return AccessResult::Hit;
        }

        self.misses += 1;
        // Choose victim: invalid line first, else true-LRU.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let line = &mut ways[victim];
        let evicted = if line.valid {
            match line.owner {
                Owner::User => self.user_lines -= 1,
                Owner::Kernel => self.kernel_lines -= 1,
            }
            Some(line.owner)
        } else {
            None
        };
        *line = Line {
            tag,
            owner,
            lru: self.clock,
            valid: true,
        };
        match owner {
            Owner::User => self.user_lines += 1,
            Owner::Kernel => self.kernel_lines += 1,
        }
        AccessResult::Miss { evicted }
    }

    /// Invalidates every line (e.g. entering the CC6 sleep state flushes
    /// caches — one reason short sleeps are detrimental, paper §IV-B).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = INVALID;
        }
        self.user_lines = 0;
        self.kernel_lines = 0;
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0.0 when no accesses yet).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets hit/miss counters without touching cache contents.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of valid lines currently owned by `owner`.
    pub fn occupancy(&self, owner: Owner) -> usize {
        match owner {
            Owner::User => self.user_lines,
            Owner::Kernel => self.kernel_lines,
        }
    }

    /// Fraction of the total capacity currently owned by `owner`.
    pub fn occupancy_fraction(&self, owner: Owner) -> f64 {
        self.occupancy(owner) as f64 / self.lines.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn default_geometry_is_l1d_like() {
        let c = CacheConfig::default();
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn degenerate_geometry_panics() {
        Cache::new(CacheConfig {
            capacity_bytes: 100,
            ways: 3,
            line_bytes: 64,
        });
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(
            c.access(0, Owner::User),
            AccessResult::Miss { evicted: None }
        );
        assert_eq!(c.access(0, Owner::User), AccessResult::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = tiny();
        c.access(0x100, Owner::User);
        assert!(c.access(0x13F, Owner::User).is_hit()); // same 64B line
        assert!(!c.access(0x140, Owner::User).is_hit()); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 4 sets, 2 ways; set stride = 64*4 = 256
        let a = 0u64; // set 0
        let b = 256u64; // set 0, different tag
        let d = 512u64; // set 0, third tag
        c.access(a, Owner::User);
        c.access(b, Owner::User);
        c.access(a, Owner::User); // a more recent than b
        let res = c.access(d, Owner::User); // evicts b
        assert_eq!(
            res,
            AccessResult::Miss {
                evicted: Some(Owner::User)
            }
        );
        assert!(c.access(a, Owner::User).is_hit());
        assert!(!c.access(b, Owner::User).is_hit()); // b was the victim
    }

    #[test]
    fn kernel_accesses_steal_user_occupancy() {
        let mut c = tiny();
        // Fill the whole cache with user lines.
        for i in 0..8u64 {
            c.access(i * 64, Owner::User);
        }
        assert_eq!(c.occupancy(Owner::User), 8);
        assert_eq!(c.occupancy(Owner::Kernel), 0);
        // Kernel streams through twice the capacity.
        for i in 0..16u64 {
            c.access(0x10000 + i * 64, Owner::Kernel);
        }
        assert_eq!(c.occupancy(Owner::User), 0);
        assert_eq!(c.occupancy(Owner::Kernel), 8);
        assert!((c.occupancy_fraction(Owner::Kernel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hit_reassigns_ownership() {
        let mut c = tiny();
        c.access(0, Owner::User);
        assert_eq!(c.occupancy(Owner::User), 1);
        c.access(0, Owner::Kernel);
        assert_eq!(c.occupancy(Owner::User), 0);
        assert_eq!(c.occupancy(Owner::Kernel), 1);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(i * 64, Owner::User);
        }
        c.flush();
        assert_eq!(c.occupancy(Owner::User), 0);
        assert!(!c.access(0, Owner::User).is_hit());
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut c = tiny();
        c.access(0, Owner::User);
        c.reset_counters();
        assert_eq!(c.misses(), 0);
        assert!(c.access(0, Owner::User).is_hit());
    }

    #[test]
    fn miss_rate_zero_without_accesses() {
        assert_eq!(tiny().miss_rate(), 0.0);
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheConfig::default());
        let lines = 16 * 1024 / 64; // exactly capacity
        for round in 0..4 {
            for i in 0..lines as u64 {
                let r = c.access(i * 64, Owner::User);
                if round > 0 {
                    assert!(r.is_hit(), "line {i} missed on round {round}");
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Occupancy bookkeeping always sums to the number of valid lines
        /// and never exceeds capacity.
        #[test]
        fn occupancy_is_conserved(
            addrs in proptest::collection::vec((0u64..1 << 20, any::<bool>()), 1..500)
        ) {
            let mut c = Cache::new(CacheConfig {
                capacity_bytes: 1024,
                ways: 4,
                line_bytes: 64,
            });
            let total_lines = 1024 / 64;
            for (addr, is_kernel) in addrs {
                let owner = if is_kernel { Owner::Kernel } else { Owner::User };
                c.access(addr, owner);
                let occ = c.occupancy(Owner::User) + c.occupancy(Owner::Kernel);
                prop_assert!(occ <= total_lines);
            }
        }

        /// An immediate re-access of the same address always hits.
        #[test]
        fn immediate_reaccess_hits(addr in 0u64..1 << 30) {
            let mut c = Cache::new(CacheConfig::default());
            c.access(addr, Owner::User);
            prop_assert!(c.access(addr, Owner::User).is_hit());
        }

        /// hits + misses equals the number of accesses.
        #[test]
        fn counters_sum_to_accesses(
            addrs in proptest::collection::vec(0u64..1 << 16, 0..300)
        ) {
            let mut c = Cache::new(CacheConfig::default());
            for &a in &addrs {
                c.access(a, Owner::User);
            }
            prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        }
    }
}
