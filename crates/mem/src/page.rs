//! Page-residency tracking.
//!
//! GPU workloads in the paper allocate input data on demand; when a GPU
//! kernel touches a page that is not yet resident it takes a *soft page
//! fault* that the host CPU must service (paper §III). [`PageTable`] is the
//! shared residency map: the GPU calls [`PageTable::touch`], and the kernel
//! fault handler calls [`PageTable::make_resident`] at service completion.
// Sanctioned exemption (see lint.toml): residency sets answer
// membership queries only and are never iterated.
#![allow(clippy::disallowed_types)]

use std::collections::HashSet;

/// Identifier of a 4 KiB virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Outcome of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchResult {
    /// The page is resident; the access proceeds at full speed.
    Resident,
    /// The page is absent: a demand fault must be raised (an SSR).
    Fault,
    /// The page is absent but a fault for it is already outstanding; the
    /// toucher should block on the existing fault rather than raise a
    /// duplicate.
    FaultPending,
}

/// A residency map over a process's virtual pages.
///
/// # Example
///
/// ```
/// use hiss_mem::{PageTable, PageId, TouchResult};
///
/// let mut pt = PageTable::new();
/// let page = PageId(7);
/// assert_eq!(pt.touch(page), TouchResult::Fault);        // first touch faults
/// assert_eq!(pt.touch(page), TouchResult::FaultPending); // don't double-fault
/// pt.make_resident(page);
/// assert_eq!(pt.touch(page), TouchResult::Resident);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    resident: HashSet<PageId>,
    pending: HashSet<PageId>,
    faults: u64,
}

impl PageTable {
    /// Creates an empty page table (no pages resident).
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Touches `page`, recording a fault if it is absent and no fault for
    /// it is already outstanding.
    pub fn touch(&mut self, page: PageId) -> TouchResult {
        if self.resident.contains(&page) {
            TouchResult::Resident
        } else if self.pending.contains(&page) {
            TouchResult::FaultPending
        } else {
            self.pending.insert(page);
            self.faults += 1;
            TouchResult::Fault
        }
    }

    /// Completes a fault (or pre-populates): marks `page` resident and
    /// clears any pending fault for it.
    pub fn make_resident(&mut self, page: PageId) {
        self.pending.remove(&page);
        self.resident.insert(page);
    }

    /// Pre-populates a contiguous range of pages (models pinned memory —
    /// the traditional no-SSR configuration that baselines are run with).
    pub fn populate_range(&mut self, first: PageId, count: u64) {
        for p in first.0..first.0.saturating_add(count) {
            self.resident.insert(PageId(p));
        }
    }

    /// Evicts a page (swap-out / migration), so the next touch faults again.
    pub fn evict(&mut self, page: PageId) {
        self.resident.remove(&page);
    }

    /// `true` if `page` is resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains(&page)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of faults recorded so far.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Number of faults currently outstanding (touched but not yet made
    /// resident).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_then_pending_then_resident() {
        let mut pt = PageTable::new();
        assert_eq!(pt.touch(PageId(1)), TouchResult::Fault);
        assert_eq!(pt.touch(PageId(1)), TouchResult::FaultPending);
        assert_eq!(pt.fault_count(), 1);
        pt.make_resident(PageId(1));
        assert_eq!(pt.touch(PageId(1)), TouchResult::Resident);
        assert_eq!(pt.pending_count(), 0);
    }

    #[test]
    fn populate_range_prevents_faults() {
        let mut pt = PageTable::new();
        pt.populate_range(PageId(10), 5);
        for p in 10..15 {
            assert_eq!(pt.touch(PageId(p)), TouchResult::Resident);
        }
        assert_eq!(pt.touch(PageId(15)), TouchResult::Fault);
        assert_eq!(pt.resident_count(), 5);
    }

    #[test]
    fn evict_causes_refault() {
        let mut pt = PageTable::new();
        pt.make_resident(PageId(3));
        pt.evict(PageId(3));
        assert_eq!(pt.touch(PageId(3)), TouchResult::Fault);
        assert_eq!(pt.fault_count(), 1);
    }

    #[test]
    fn distinct_pages_fault_independently() {
        let mut pt = PageTable::new();
        for p in 0..100 {
            assert_eq!(pt.touch(PageId(p)), TouchResult::Fault);
        }
        assert_eq!(pt.fault_count(), 100);
        assert_eq!(pt.pending_count(), 100);
    }

    #[test]
    fn populate_range_saturates_at_u64_max() {
        let mut pt = PageTable::new();
        pt.populate_range(PageId(u64::MAX - 2), 10);
        assert!(pt.is_resident(PageId(u64::MAX - 1)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Each distinct page faults at most once before being made
        /// resident, no matter the touch pattern.
        #[test]
        fn at_most_one_fault_per_page(
            touches in proptest::collection::vec(0u64..64, 1..500)
        ) {
            let mut pt = PageTable::new();
            for &p in &touches {
                pt.touch(PageId(p));
            }
            let distinct: std::collections::HashSet<_> = touches.iter().collect();
            prop_assert_eq!(pt.fault_count() as usize, distinct.len());
        }

        /// touch() after make_resident() is always Resident.
        #[test]
        fn residency_is_sticky(pages in proptest::collection::vec(0u64..1000, 1..100)) {
            let mut pt = PageTable::new();
            for &p in &pages {
                pt.touch(PageId(p));
                pt.make_resident(PageId(p));
            }
            for &p in &pages {
                prop_assert_eq!(pt.touch(PageId(p)), TouchResult::Resident);
            }
        }
    }
}
