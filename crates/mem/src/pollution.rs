//! Fast statistical microarchitectural-pollution model.
//!
//! Simulating every cache access of a hundred-millisecond run across an
//! 80-configuration figure grid is intractable, so experiment-scale runs
//! use this statistical abstraction of the structural models in
//! [`cache`](crate::cache) and [`branch`](crate::branch):
//!
//! Each core tracks a *warmth* value in `[0, 1]` per structure (L1D,
//! branch predictor) for the user thread it is running:
//!
//! - while **kernel** code runs (SSR handlers), warmth decays
//!   exponentially toward 0 with time constant `kernel_decay_tau` — the
//!   handler streams its own code and data through the structure,
//! - while **user** code runs, warmth recovers exponentially toward 1 with
//!   time constant `user_refill_tau` — the application re-fetches its
//!   working set,
//! - a **flush** (CC6 entry, context migration) resets warmth to 0.
//!
//! The exponential form is the continuous-time limit of LRU displacement
//! by a competing reference stream and matches the structural models'
//! observed behaviour (see `tests/model_agreement.rs` in this crate).
//!
//! Warmth maps to performance in `hiss-cpu`: the user IPC penalty is
//! proportional to `1 - warmth`, scaled by a per-application sensitivity
//! from the workload catalog (fluidanimate is highly cache-sensitive,
//! raytrace barely — paper §IV-A).

use hiss_sim::Ns;

/// Time constants governing warmth decay and refill for one structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollutionParams {
    /// Time constant of exponential warmth decay while kernel code runs.
    pub kernel_decay_tau: Ns,
    /// Time constant of exponential warmth recovery while user code runs.
    pub user_refill_tau: Ns,
}

impl PollutionParams {
    /// Defaults for an L1 data cache: a kernel handler streaming through a
    /// 16 KiB L1D displaces most of it within a few microseconds, and the
    /// user working set takes somewhat longer to page back in.
    pub fn l1d_default() -> Self {
        PollutionParams {
            kernel_decay_tau: Ns::from_micros(3),
            user_refill_tau: Ns::from_micros(18),
        }
    }

    /// Defaults for a branch predictor: smaller state, faster to trash and
    /// faster to retrain than the L1D.
    pub fn branch_default() -> Self {
        PollutionParams {
            kernel_decay_tau: Ns::from_nanos(1_500),
            user_refill_tau: Ns::from_micros(10),
        }
    }
}

/// Warmth state of one core's user-visible microarchitectural structures.
///
/// # Example
///
/// ```
/// use hiss_mem::WarmthModel;
/// use hiss_sim::Ns;
///
/// let mut w = WarmthModel::new_warm();
/// assert_eq!(w.cache_warmth(), 1.0);
/// w.on_kernel(Ns::from_micros(4)); // one L1D decay constant of kernel time
/// assert!(w.cache_warmth() < 0.4);
/// w.on_user(Ns::from_micros(120)); // ten refill constants of user time
/// assert!(w.cache_warmth() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct WarmthModel {
    cache: f64,
    branch: f64,
    cache_params: PollutionParams,
    branch_params: PollutionParams,
    /// Time-weighted average of (1 - cache warmth), for reporting.
    cold_cache_integral: f64,
    cold_branch_integral: f64,
    observed: Ns,
}

impl WarmthModel {
    /// Creates a model starting fully warm, with default L1D/branch
    /// parameters.
    pub fn new_warm() -> Self {
        Self::with_params(
            PollutionParams::l1d_default(),
            PollutionParams::branch_default(),
        )
    }

    /// Creates a fully-warm model with explicit parameters.
    pub fn with_params(cache_params: PollutionParams, branch_params: PollutionParams) -> Self {
        WarmthModel {
            cache: 1.0,
            branch: 1.0,
            cache_params,
            branch_params,
            cold_cache_integral: 0.0,
            cold_branch_integral: 0.0,
            observed: Ns::ZERO,
        }
    }

    /// Current L1D warmth in `[0, 1]`.
    pub fn cache_warmth(&self) -> f64 {
        self.cache
    }

    /// Current branch-predictor warmth in `[0, 1]`.
    pub fn branch_warmth(&self) -> f64 {
        self.branch
    }

    fn decay(w: f64, dur: Ns, tau: Ns) -> f64 {
        if tau == Ns::ZERO {
            return 0.0;
        }
        w * (-(dur.as_nanos() as f64) / tau.as_nanos() as f64).exp()
    }

    fn refill(w: f64, dur: Ns, tau: Ns) -> f64 {
        if tau == Ns::ZERO {
            return 1.0;
        }
        1.0 - (1.0 - w) * (-(dur.as_nanos() as f64) / tau.as_nanos() as f64).exp()
    }

    fn integrate(&mut self, dur: Ns) {
        let d = dur.as_nanos() as f64;
        self.cold_cache_integral += (1.0 - self.cache) * d;
        self.cold_branch_integral += (1.0 - self.branch) * d;
        self.observed += dur;
    }

    /// Advances the model across `dur` of kernel execution on this core.
    /// Warmth decays; the interval is integrated *at the post-decay value*
    /// (pessimistic by at most one handler length).
    pub fn on_kernel(&mut self, dur: Ns) {
        self.cache = Self::decay(self.cache, dur, self.cache_params.kernel_decay_tau);
        self.branch = Self::decay(self.branch, dur, self.branch_params.kernel_decay_tau);
        self.integrate(dur);
    }

    /// Advances the model across `dur` of user execution; warmth refills.
    /// The interval is integrated at the pre-refill value so the penalty of
    /// re-warming is attributed to the user interval that pays it.
    pub fn on_user(&mut self, dur: Ns) {
        self.integrate(dur);
        self.cache = Self::refill(self.cache, dur, self.cache_params.user_refill_tau);
        self.branch = Self::refill(self.branch, dur, self.branch_params.user_refill_tau);
    }

    /// Average user slowdown factor across `dur` of user execution,
    /// *without yet advancing state*: callers first ask for the penalty a
    /// stretch of user work will pay, stretch its duration accordingly,
    /// then commit with [`WarmthModel::on_user`].
    ///
    /// `cache_sensitivity` / `branch_sensitivity` are per-application
    /// factors: the maximum fractional slowdown when the structure is
    /// fully cold.
    pub fn user_slowdown(&self, dur: Ns, cache_sensitivity: f64, branch_sensitivity: f64) -> f64 {
        // Mean of (1 - warmth) over an exponential refill of length d with
        // time constant tau, starting from w0:
        //   avg_cold = (1 - w0) * tau/d * (1 - exp(-d/tau))
        let avg_cold = |w0: f64, tau: Ns| -> f64 {
            let d = dur.as_nanos() as f64;
            if d == 0.0 {
                return 1.0 - w0;
            }
            if tau == Ns::ZERO {
                return 0.0;
            }
            let t = tau.as_nanos() as f64;
            (1.0 - w0) * (t / d) * (1.0 - (-d / t).exp())
        };
        1.0 + cache_sensitivity * avg_cold(self.cache, self.cache_params.user_refill_tau)
            + branch_sensitivity * avg_cold(self.branch, self.branch_params.user_refill_tau)
    }

    /// Models a full structure flush (CC6 sleep entry flushes caches).
    pub fn on_flush(&mut self) {
        self.cache = 0.0;
        self.branch = 0.0;
    }

    /// Time-averaged coldness (`1 - warmth`) of the L1D over everything
    /// observed so far; proxies the *increase* in L1D miss rate (Fig. 5a).
    pub fn avg_cache_coldness(&self) -> f64 {
        if self.observed == Ns::ZERO {
            0.0
        } else {
            self.cold_cache_integral / self.observed.as_nanos() as f64
        }
    }

    /// Time-averaged coldness of the branch predictor (Fig. 5b proxy).
    pub fn avg_branch_coldness(&self) -> f64 {
        if self.observed == Ns::ZERO {
            0.0
        } else {
            self.cold_branch_integral / self.observed.as_nanos() as f64
        }
    }
}

impl Default for WarmthModel {
    fn default() -> Self {
        Self::new_warm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_warm() {
        let w = WarmthModel::new_warm();
        assert_eq!(w.cache_warmth(), 1.0);
        assert_eq!(w.branch_warmth(), 1.0);
        assert_eq!(w.avg_cache_coldness(), 0.0);
    }

    #[test]
    fn kernel_time_cools_structures() {
        let mut w = WarmthModel::new_warm();
        w.on_kernel(Ns::from_micros(3)); // exactly one cache tau
        assert!((w.cache_warmth() - (-1.0f64).exp()).abs() < 1e-9);
        // Branch tau is 1.5µs, so 3µs = two taus.
        assert!((w.branch_warmth() - (-2.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn user_time_rewarms() {
        let mut w = WarmthModel::new_warm();
        w.on_kernel(Ns::from_micros(40)); // essentially fully cold
        assert!(w.cache_warmth() < 1e-4);
        w.on_user(Ns::from_micros(18)); // one refill tau
        assert!((w.cache_warmth() - (1.0 - (-1.0f64).exp())).abs() < 1e-3);
        w.on_user(Ns::from_millis(1));
        assert!(w.cache_warmth() > 0.9999);
    }

    #[test]
    fn flush_resets_to_cold() {
        let mut w = WarmthModel::new_warm();
        w.on_flush();
        assert_eq!(w.cache_warmth(), 0.0);
        assert_eq!(w.branch_warmth(), 0.0);
    }

    #[test]
    fn slowdown_is_one_when_warm() {
        let w = WarmthModel::new_warm();
        let s = w.user_slowdown(Ns::from_micros(10), 0.5, 0.3);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slowdown_scales_with_sensitivity() {
        let mut w = WarmthModel::new_warm();
        w.on_kernel(Ns::from_millis(1)); // fully cold
        let lo = w.user_slowdown(Ns::from_micros(5), 0.1, 0.0);
        let hi = w.user_slowdown(Ns::from_micros(5), 0.5, 0.0);
        assert!(hi > lo);
        assert!(lo > 1.0);
    }

    #[test]
    fn slowdown_shrinks_for_longer_user_stretches() {
        // A long user stretch amortises the cold start: average slowdown
        // over the stretch is smaller.
        let mut w = WarmthModel::new_warm();
        w.on_kernel(Ns::from_millis(1));
        let short = w.user_slowdown(Ns::from_micros(2), 0.4, 0.2);
        let long = w.user_slowdown(Ns::from_millis(1), 0.4, 0.2);
        assert!(long < short);
        assert!(long > 1.0);
    }

    #[test]
    fn coldness_integrals_accumulate() {
        let mut w = WarmthModel::new_warm();
        w.on_kernel(Ns::from_micros(100));
        w.on_user(Ns::from_micros(100));
        let cold = w.avg_cache_coldness();
        assert!(cold > 0.0 && cold <= 1.0, "coldness {cold}");
    }

    #[test]
    fn more_interruptions_mean_more_coldness() {
        // Same total kernel time, but spread as many small interruptions,
        // produces more integrated user-visible coldness than one lump at
        // the start followed by a long recovery.
        let mut lumped = WarmthModel::new_warm();
        lumped.on_kernel(Ns::from_micros(50));
        for _ in 0..10 {
            lumped.on_user(Ns::from_micros(100));
        }

        let mut spread = WarmthModel::new_warm();
        for _ in 0..10 {
            spread.on_kernel(Ns::from_micros(5));
            spread.on_user(Ns::from_micros(100));
        }
        assert!(
            spread.avg_cache_coldness() > lumped.avg_cache_coldness() * 0.9,
            "spread {} vs lumped {}",
            spread.avg_cache_coldness(),
            lumped.avg_cache_coldness()
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Warmth stays within [0, 1] under any interleaving of kernel,
        /// user, and flush episodes.
        #[test]
        fn warmth_bounded(
            steps in proptest::collection::vec((0u8..3, 0u64..100_000), 1..200)
        ) {
            let mut w = WarmthModel::new_warm();
            for (kind, ns) in steps {
                match kind {
                    0 => w.on_kernel(Ns::from_nanos(ns)),
                    1 => w.on_user(Ns::from_nanos(ns)),
                    _ => w.on_flush(),
                }
                prop_assert!((0.0..=1.0).contains(&w.cache_warmth()));
                prop_assert!((0.0..=1.0).contains(&w.branch_warmth()));
                prop_assert!((0.0..=1.0).contains(&w.avg_cache_coldness()));
            }
        }

        /// Slowdown is always >= 1 and monotone in sensitivity.
        #[test]
        fn slowdown_sane(
            kernel_us in 0u64..100,
            dur_us in 1u64..1000,
            sens in 0.0f64..1.0,
        ) {
            let mut w = WarmthModel::new_warm();
            w.on_kernel(Ns::from_micros(kernel_us));
            let s0 = w.user_slowdown(Ns::from_micros(dur_us), sens, 0.0);
            let s1 = w.user_slowdown(Ns::from_micros(dur_us), sens + 0.5, 0.0);
            prop_assert!(s0 >= 1.0 - 1e-12);
            prop_assert!(s1 >= s0 - 1e-12);
        }

        /// Kernel decay then long user refill returns warmth close to 1.
        #[test]
        fn refill_converges(kernel_us in 0u64..1000) {
            let mut w = WarmthModel::new_warm();
            w.on_kernel(Ns::from_micros(kernel_us));
            w.on_user(Ns::from_millis(10));
            prop_assert!(w.cache_warmth() > 0.999);
            prop_assert!(w.branch_warmth() > 0.999);
        }
    }
}
