//! # hiss-mem — memory-hierarchy models
//!
//! Microarchitectural substrate for the HISS simulator. GPU system service
//! requests (SSRs) hurt CPU applications two ways (paper §II-D): *directly*
//! (stolen cycles in handlers) and *indirectly* (the kernel handler evicts
//! user state from caches and branch predictors, so user code runs slower
//! after every interrupt — the blue cross-hatched 'b' segments of Fig. 2).
//! This crate models the indirect channel:
//!
//! - [`Cache`]: a structural set-associative cache with per-owner occupancy
//!   tracking, used to *derive and validate* pollution behaviour,
//! - [`GsharePredictor`]: a structural branch predictor, same role,
//! - [`WarmthModel`]: the fast statistical model actually used inside
//!   figure-scale simulations (exponential decay of "warmth" while the
//!   kernel runs, exponential refill while user code runs),
//! - [`PageTable`]: page-residency tracking that turns GPU memory accesses
//!   into demand faults (the SSRs themselves).
//!
//! The structural and statistical models are cross-checked in integration
//! tests — the warmth model is the one that runs inside experiments
//! because figure grids simulate hundreds of milliseconds across 80+
//! configurations.

pub mod branch;
pub mod cache;
pub mod page;
pub mod pollution;

pub use branch::GsharePredictor;
pub use cache::{AccessResult, Cache, CacheConfig, Owner};
pub use page::{PageId, PageTable, TouchResult};
pub use pollution::{PollutionParams, WarmthModel};
