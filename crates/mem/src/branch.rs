//! Structural gshare branch predictor.
//!
//! Used to validate the branch-predictor half of the statistical pollution
//! model: kernel handler execution trains the shared pattern-history table
//! away from the user application's branches, raising the user
//! misprediction rate after each interrupt (paper Fig. 5b).

/// A gshare predictor: global history XOR branch PC indexes a table of
/// 2-bit saturating counters.
///
/// # Example
///
/// ```
/// use hiss_mem::GsharePredictor;
///
/// let mut bp = GsharePredictor::new(10); // 1024-entry PHT
/// // A loop branch taken many times becomes predictable.
/// for _ in 0..64 {
///     bp.execute(0x400_100, true);
/// }
/// let before = bp.mispredicts();
/// bp.execute(0x400_100, true);
/// assert_eq!(bp.mispredicts(), before); // predicted correctly
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    /// 2-bit saturating counters: 0,1 predict not-taken; 2,3 predict taken.
    pht: Vec<u8>,
    index_bits: u32,
    history: u64,
    executed: u64,
    mispredicted: u64,
}

impl GsharePredictor {
    /// Creates a predictor with a `2^index_bits`-entry pattern history
    /// table, counters initialised to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24 (16 M entries is far
    /// beyond any real L1 predictor and signals a configuration mistake).
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24, got {index_bits}"
        );
        GsharePredictor {
            pht: vec![1; 1 << index_bits],
            index_bits,
            history: 0,
            executed: 0,
            mispredicted: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicts the branch at `pc` without updating any state.
    pub fn predict(&self, pc: u64) -> bool {
        self.pht[self.index(pc)] >= 2
    }

    /// Executes a branch: predicts, then updates the counter and global
    /// history with the actual outcome. Returns `true` if the prediction
    /// was correct.
    pub fn execute(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.pht[idx] >= 2;
        let correct = predicted == taken;
        self.executed += 1;
        if !correct {
            self.mispredicted += 1;
        }
        let ctr = &mut self.pht[idx];
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        correct
    }

    /// Branches executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicted
    }

    /// Misprediction rate over all executed branches (0.0 when none).
    pub fn mispredict_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executed as f64
        }
    }

    /// Resets counters without touching predictor state.
    pub fn reset_counters(&mut self) {
        self.executed = 0;
        self.mispredicted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_bits_panics() {
        GsharePredictor::new(0);
    }

    #[test]
    fn monotone_branch_becomes_predictable() {
        let mut bp = GsharePredictor::new(12);
        for _ in 0..200 {
            bp.execute(0x1000, true);
        }
        bp.reset_counters();
        for _ in 0..100 {
            bp.execute(0x1000, true);
        }
        assert_eq!(bp.mispredicts(), 0);
    }

    #[test]
    fn alternating_history_is_learnable() {
        // T,N,T,N … is perfectly predictable with global history once the
        // PHT warms up.
        let mut bp = GsharePredictor::new(12);
        for i in 0..400u64 {
            bp.execute(0x2000, i % 2 == 0);
        }
        bp.reset_counters();
        for i in 0..100u64 {
            bp.execute(0x2000, i % 2 == 0);
        }
        assert!(
            bp.mispredict_rate() < 0.05,
            "rate {} too high",
            bp.mispredict_rate()
        );
    }

    #[test]
    fn kernel_stream_pollutes_user_prediction() {
        let mut bp = GsharePredictor::new(10);
        // Train user branches.
        let user_pcs: Vec<u64> = (0..64).map(|i| 0x4000 + i * 16).collect();
        for _ in 0..50 {
            for &pc in &user_pcs {
                bp.execute(pc, true);
            }
        }
        bp.reset_counters();
        for &pc in &user_pcs {
            bp.execute(pc, true);
        }
        let clean_rate = bp.mispredict_rate();

        // Kernel interlude: different PCs, biased not-taken, scrambles
        // history and counters.
        for i in 0..2000u64 {
            bp.execute(0x8_0000 + (i % 128) * 8, i % 3 == 0);
        }

        bp.reset_counters();
        for &pc in &user_pcs {
            bp.execute(pc, true);
        }
        let polluted_rate = bp.mispredict_rate();
        assert!(
            polluted_rate > clean_rate,
            "pollution did not raise mispredict rate ({clean_rate} -> {polluted_rate})"
        );
    }

    #[test]
    fn predict_is_pure() {
        let bp = GsharePredictor::new(8);
        let before = bp.clone();
        let _ = bp.predict(0x1234);
        assert_eq!(bp.executed(), before.executed());
    }

    #[test]
    fn rate_zero_without_branches() {
        assert_eq!(GsharePredictor::new(8).mispredict_rate(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Mispredicts never exceed executed branches.
        #[test]
        fn counters_are_consistent(
            branches in proptest::collection::vec((0u64..1 << 20, any::<bool>()), 0..500)
        ) {
            let mut bp = GsharePredictor::new(10);
            for (pc, taken) in &branches {
                bp.execute(*pc, *taken);
            }
            prop_assert_eq!(bp.executed(), branches.len() as u64);
            prop_assert!(bp.mispredicts() <= bp.executed());
        }

        /// execute() returns the same verdict predict() would have given.
        #[test]
        fn execute_matches_predict(
            seed_branches in proptest::collection::vec((0u64..1 << 16, any::<bool>()), 1..100),
            pc in 0u64..1 << 16,
            taken in any::<bool>(),
        ) {
            let mut bp = GsharePredictor::new(10);
            for (p, t) in seed_branches {
                bp.execute(p, t);
            }
            let predicted = bp.predict(pc);
            let correct = bp.execute(pc, taken);
            prop_assert_eq!(correct, predicted == taken);
        }
    }
}
