//! Criterion-free performance report for the experiment engine.
//!
//! Times the full Fig. 3 grid (13 CPU × 6 GPU applications, the
//! workhorse of every evaluation artifact) three ways:
//!
//! 1. **serial, cold cache** — `HISS_THREADS=1`, `BaselineCache` empty:
//!    the pre-runner behaviour;
//! 2. **parallel, cold cache** — all available workers (at least 4), the
//!    default path on a multi-core host;
//! 3. **parallel, warm cache** — baselines already memoized by an
//!    earlier figure, the steady state of a full figures regeneration.
//!
//! Plus a raw [`hiss_sim::EventQueue`] throughput measurement
//! (events/second through push+pop), the substrate the hot-path tuning
//! targets, and one instrumented engine run (`x264`+`ubench`, the bench
//! engine-suite cell) reporting simulated events/second and allocator
//! traffic per run — the wall-clock trend the warn-only `bench.wall.*`
//! gauges record but cannot gate on.
//!
//! Emits one human-readable block and one machine-readable JSON line
//! (prefix `PERF_REPORT_JSON` on stdout, and written verbatim to
//! `target/perf_report.json` or the `--out` path — under `target/` so a
//! run never dirties the working tree; CI uploads it as an artifact).
//! Run with:
//!
//! ```text
//! cargo run --release --example perf_report [-- --out <path>]
//! ```
// Wall-clock timing is this example's purpose; it reports host
// performance, not simulation results.
#![allow(clippy::disallowed_types)]

use std::time::Instant;

use hiss::experiments::{fig3, BaselineCache};
use hiss::{ExperimentBuilder, SystemConfig};

/// Counts allocation traffic (per thread) so the engine-run row can
/// report allocs/bytes per run; pure delegation to the system allocator
/// otherwise.
#[global_allocator]
static ALLOC: hiss_bench::CountingAlloc = hiss_bench::CountingAlloc::new();

/// One engine run (the bench engine-suite cell), instrumented for
/// simulated events/second and allocator traffic.
struct EngineRun {
    events: u64,
    events_per_sec: f64,
    allocs: u64,
    alloc_bytes: u64,
}

fn engine_run(cfg: &SystemConfig) -> EngineRun {
    let probe = hiss_bench::AllocProbe::start();
    let start = Instant::now();
    let report = ExperimentBuilder::new(*cfg)
        .cpu_app("x264")
        .gpu_app("ubench")
        .run();
    let secs = start.elapsed().as_secs_f64();
    let (alloc_bytes, allocs) = probe.finish();
    let events = report
        .metrics
        .counter_value("run.events_popped")
        .unwrap_or(0);
    EngineRun {
        events,
        events_per_sec: events as f64 / secs,
        allocs,
        alloc_bytes,
    }
}

fn time_fig3(cfg: &SystemConfig, threads: usize, clear_cache: bool) -> (f64, usize) {
    std::env::set_var("HISS_THREADS", threads.to_string());
    if clear_cache {
        BaselineCache::global().clear();
    }
    let start = Instant::now();
    let rows = fig3::fig3(cfg);
    let secs = start.elapsed().as_secs_f64();
    std::env::remove_var("HISS_THREADS");
    (secs, rows.len())
}

fn event_queue_events_per_sec() -> f64 {
    use hiss_sim::{EventQueue, Ns, Rng};
    let mut rng = Rng::new(7);
    let times: Vec<Ns> = (0..4096u64)
        .map(|_| Ns::from_nanos(rng.gen_range(0, 1_000_000)))
        .collect();
    // Calibrated batch count: ~10^7 events keeps the measurement well
    // above timer resolution without slowing the report down.
    let reps = 2_500;
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        let mut q = EventQueue::with_capacity(times.len());
        for (i, t) in times.iter().enumerate() {
            q.push(*t, i);
        }
        while let Some((_, e)) = q.pop() {
            sink = sink.wrapping_add(e);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (reps as f64 * times.len() as f64) / secs
}

/// Parses `--out <path>` from the example's arguments; defaults to
/// `target/perf_report.json` so the report never lands in the checkout.
fn out_path() -> std::path::PathBuf {
    let mut args = std::env::args().skip(1);
    match args.next() {
        None => std::path::PathBuf::from("target").join("perf_report.json"),
        Some(flag) if flag == "--out" => match (args.next(), args.next()) {
            (Some(p), None) => p.into(),
            _ => {
                eprintln!("perf_report: --out requires exactly one path");
                std::process::exit(2);
            }
        },
        Some(arg) => {
            eprintln!("perf_report: unknown argument `{arg}` (only --out <path>)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let out = out_path();
    let cfg = SystemConfig::a10_7850k();
    let host_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The parallel measurement always asks for at least 4 workers; on
    // hosts with fewer cores they time-slice (and the speedup column
    // will honestly show ~1x — the warm-cache row is the hardware-
    // independent win).
    let workers = host_workers.max(4);

    let (serial_cold_s, cells) = time_fig3(&cfg, 1, true);
    let (parallel_cold_s, _) = time_fig3(&cfg, workers, true);
    let (parallel_warm_s, _) = time_fig3(&cfg, workers, false);

    let speedup_parallel = serial_cold_s / parallel_cold_s;
    let speedup_warm = serial_cold_s / parallel_warm_s;
    let events_per_sec = event_queue_events_per_sec();
    let engine = engine_run(&cfg);

    println!("perf_report: fig3 grid, {cells} cells, host parallelism {host_workers}");
    println!(
        "  serial cold    {serial_cold_s:8.3} s   {:8.2} cells/s",
        cells as f64 / serial_cold_s
    );
    println!(
        "  parallel cold  {parallel_cold_s:8.3} s   {:8.2} cells/s   ({workers} workers, {speedup_parallel:.2}x)",
        cells as f64 / parallel_cold_s
    );
    println!(
        "  parallel warm  {parallel_warm_s:8.3} s   {:8.2} cells/s   (cached baselines, {speedup_warm:.2}x)",
        cells as f64 / parallel_warm_s
    );
    println!("  event queue    {events_per_sec:.3e} events/s");
    println!(
        "  engine run     {:.3e} events/s   ({} events, {} allocs, {} bytes per run)",
        engine.events_per_sec, engine.events, engine.allocs, engine.alloc_bytes
    );
    println!(
        "  baseline cache {} entries, {} hits / {} misses",
        BaselineCache::global().len(),
        BaselineCache::global().hit_count(),
        BaselineCache::global().miss_count()
    );

    let json = format!(
        "{{\"grid\":\"fig3\",\"cells\":{cells},\
         \"host_workers\":{host_workers},\"workers\":{workers},\
         \"serial_cold_s\":{serial_cold_s:.4},\
         \"parallel_cold_s\":{parallel_cold_s:.4},\
         \"parallel_warm_s\":{parallel_warm_s:.4},\
         \"speedup_parallel\":{speedup_parallel:.3},\
         \"speedup_warm\":{speedup_warm:.3},\
         \"cells_per_sec_cold\":{:.3},\
         \"event_queue_events_per_sec\":{events_per_sec:.0},\
         \"engine_events_per_sec\":{:.0},\
         \"engine_events_per_run\":{},\
         \"engine_allocs_per_run\":{},\
         \"engine_alloc_bytes_per_run\":{}}}",
        cells as f64 / parallel_cold_s,
        engine.events_per_sec,
        engine.events,
        engine.allocs,
        engine.alloc_bytes
    );
    println!("PERF_REPORT_JSON {json}");

    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perf_report: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => println!("perf_report: wrote {}", out.display()),
        Err(e) => {
            eprintln!("perf_report: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
