//! Quickstart: reproduce the paper's headline observation in one page.
//!
//! Runs fluidanimate (CPU) against SSSP (GPU, demand paging) on the
//! simulated A10-7850K, with and without SSRs, and prints the resulting
//! interference plus the Table I/II configuration being simulated.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hiss::experiments::tables;
use hiss::{ExperimentBuilder, SystemConfig};

fn main() {
    let cfg = SystemConfig::a10_7850k();

    println!("Table I — GPU system service requests\n");
    println!("{}", tables::render_table1(&tables::table1(&cfg)));
    println!("Table II — test system configuration\n");
    println!("{}", tables::render_table2(&tables::table2(&cfg)));

    // The paper's worst full-application pairing (§IV-A).
    let baseline = ExperimentBuilder::new(cfg)
        .cpu_app("fluidanimate")
        .gpu_app_pinned("sssp") // memory pinned up-front: no SSRs
        .run();
    let noisy = ExperimentBuilder::new(cfg)
        .cpu_app("fluidanimate")
        .gpu_app("sssp") // demand paging: every new page faults
        .run();

    println!(
        "fluidanimate + sssp, no SSRs  : runtime {}",
        baseline.cpu_app_runtime.unwrap()
    );
    println!(
        "fluidanimate + sssp, with SSRs: runtime {}",
        noisy.cpu_app_runtime.unwrap()
    );
    let perf = noisy.cpu_perf_vs(&baseline).unwrap();
    println!("normalised CPU performance    : {perf:.3}  (paper Fig. 3a: 0.69)");
    println!();
    println!("SSRs serviced      : {}", noisy.kernel.ssrs_serviced);
    println!(
        "interrupts per core: {:?}  (evenly spread, §IV-C)",
        noisy.kernel.interrupts_per_core
    );
    println!("IPIs               : {}", noisy.kernel.ipis);
    println!("mean SSR latency   : {}", noisy.kernel.mean_ssr_latency);
    println!(
        "CPU SSR overhead   : {:.1}%",
        noisy.cpu_ssr_overhead * 100.0
    );
    println!("CC6 residency      : {:.1}%", noisy.cc6_residency * 100.0);
    println!(
        "CPU energy         : {:.3} J ({:.1} W avg)",
        noisy.energy.cpu_joules, noisy.energy.cpu_avg_watts
    );
}
