//! Timeline visualisation (the paper's Fig. 2): what actually happens on
//! each core while the GPU floods the host with SSRs.
//!
//! Renders an ASCII Gantt chart of a short window of the x264 + ubench
//! co-run: user execution (`U`) repeatedly punctured by top halves (`T`),
//! IPIs (`i`), bottom halves (`B`), worker-thread service (`W`), and
//! mode switches (`s`).
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use hiss::{ExperimentBuilder, Ns, SystemConfig};

fn main() {
    let cfg = SystemConfig::a10_7850k();

    println!("x264 + ubench, 400µs window mid-run (Fig. 2 equivalent)\n");
    let report = ExperimentBuilder::new(cfg)
        .cpu_app("x264")
        .gpu_app("ubench")
        .trace_window(Ns::from_millis(5), Ns::from_micros(5400))
        .run();
    let trace = report.trace.as_ref().expect("trace was requested");
    println!("{}", trace.render_gantt(cfg.num_cores, 100));

    println!("\nTime within the window, by activity:");
    for (cat, t) in trace.totals() {
        println!("  {cat:?}: {t}");
    }

    println!("\nSame window with the GPU silent (pinned memory):\n");
    let quiet = ExperimentBuilder::new(cfg)
        .cpu_app("x264")
        .gpu_app_pinned("ubench")
        .trace_window(Ns::from_millis(5), Ns::from_micros(5400))
        .run();
    println!(
        "{}",
        quiet
            .trace
            .as_ref()
            .unwrap()
            .render_gantt(cfg.num_cores, 100)
    );

    println!("\nGPU-only sssp (idle CPUs, 2ms window): sleep and wake-ups:\n");
    let idle = ExperimentBuilder::new(cfg)
        .gpu_app("sssp")
        .trace_window(Ns::from_millis(4), Ns::from_millis(6))
        .run();
    println!(
        "{}",
        idle.trace
            .as_ref()
            .unwrap()
            .render_gantt(cfg.num_cores, 100)
    );
}
