//! Sleep and energy study (paper §IV-B, §V-E): how GPU SSRs destroy CPU
//! deep-sleep residency, and how much each mitigation recovers.
//!
//! Reproduces Fig. 4 (per-application CC6 residency) and Fig. 9
//! (residency across mitigation combinations under ubench), extended
//! with the energy model.
//!
//! ```text
//! cargo run --release --example sleep_study
//! ```

use hiss::experiments::{fig4, fig9};
use hiss::{ExperimentBuilder, Mitigation, SystemConfig};

fn main() {
    let cfg = SystemConfig::a10_7850k();

    println!("Fig. 4 — CC6 residency with and without SSRs (no CPU work)\n");
    let rows = fig4::fig4(&cfg);
    println!("{}", fig4::render(&rows));
    println!("Reading: bfs clusters faults early and lets the CPUs sleep");
    println!("afterwards; the streaming applications keep at least one core");
    println!("awake; ubench nearly eliminates sleep (paper: 86% -> 12%).\n");

    println!("Fig. 9 — mitigation techniques vs sleep (ubench)\n");
    let rows = fig9::fig9(&cfg);
    println!("{}", fig9::render(&rows));
    println!("Reading: steering confines the wake-ups to the steered core,");
    println!("letting the others sleep; coalescing alone still wakes every");
    println!("core (paper §V-E).\n");

    println!("Energy extension: average CPU power while ubench runs\n");
    let quiet = ExperimentBuilder::new(cfg).gpu_app_pinned("ubench").run();
    let noisy = ExperimentBuilder::new(cfg).gpu_app("ubench").run();
    let steered = ExperimentBuilder::new(cfg)
        .gpu_app("ubench")
        .mitigation(Mitigation {
            steer_single_core: true,
            ..Mitigation::DEFAULT
        })
        .run();
    for (label, r) in [
        ("no SSRs", &quiet),
        ("SSRs, default", &noisy),
        ("SSRs, steered", &steered),
    ] {
        println!(
            "  {label:>14}: {:5.2} W avg  (CC6 {:4.1}%)",
            r.energy.cpu_avg_watts,
            r.cc6_residency * 100.0
        );
    }
}
