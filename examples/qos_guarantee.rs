//! QoS guarantee demo (paper §VI): bound CPU interference from a
//! misbehaving accelerator by backpressuring its SSRs.
//!
//! Sweeps the governor threshold for a victim application against the
//! SSR-flooding microbenchmark, then runs the adaptive-threshold search
//! (the paper's future-work extension).
//!
//! ```text
//! cargo run --release --example qos_guarantee
//! ```

use hiss::experiments::{extensions, fig12};
use hiss::SystemConfig;

fn main() {
    let cfg = SystemConfig::a10_7850k();

    println!("Fig. 12 — QoS throttling sweep (victims vs ubench)\n");
    let rows = fig12::fig12_with(&cfg, &["x264", "fluidanimate", "swaptions"]);
    println!("{}", fig12::render(&rows));
    println!("Reading: th_1 restores CPU performance to within a few percent");
    println!("of the no-SSR baseline while accelerator throughput collapses —");
    println!("the configured ceiling is an enforced guarantee, not a hint.\n");

    println!("Adaptive threshold (extension): loosest th_x keeping x264 within 10%\n");
    let r = extensions::adaptive_qos(&cfg, "x264", "ubench", 0.10, 5);
    println!(
        "  chosen threshold : th_{:.2} ({:.2}% of CPU time)",
        r.threshold_percent, r.threshold_percent
    );
    println!("  CPU performance  : {:.3} (floor was 0.90)", r.cpu_perf);
    println!("  ubench throughput: {:.3} of unhindered", r.gpu_perf);

    println!("\nBackpressure leverage vs hardware outstanding-SSR limit:\n");
    for row in extensions::outstanding_limit_sweep(&cfg, &[8, 64, 256]) {
        println!(
            "  limit {:>4}: throttled ubench runs at {:.1}% of unhindered",
            row.limit,
            row.throttled_ratio * 100.0
        );
    }
}
