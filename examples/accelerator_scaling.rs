//! Accelerator-rich future projection (paper §I/§IV: "this problem may be
//! exacerbated as future chips include many such accelerators").
//!
//! Scales the number of concurrent SSR-generating accelerators and
//! measures CPU interference, sleep residency, and aggregate SSR traffic;
//! then shows that the QoS governor keeps its guarantee even with many
//! accelerators attached.
//!
//! ```text
//! cargo run --release --example accelerator_scaling
//! ```

use hiss::experiments::extensions;
use hiss::{ExperimentBuilder, QosParams, SystemConfig};

fn main() {
    let cfg = SystemConfig::a10_7850k();

    println!("Multi-accelerator scaling: x264 vs N copies of sssp\n");
    let rows = extensions::multi_gpu_scaling(&cfg, "x264", "sssp", 4);
    println!("{}", extensions::render_scaling(&rows));
    println!("Reading: every added accelerator steals more CPU time and");
    println!("sleep opportunity — the paper's motivation for treating SSR");
    println!("interference as a first-class QoS problem.\n");

    println!("The saturation effect: N copies of ubench\n");
    let rows = extensions::multi_gpu_scaling(&cfg, "x264", "ubench", 3);
    println!("{}", extensions::render_scaling(&rows));
    println!("Reading: one ubench already saturates the SSR service chain,");
    println!("so additional copies mostly starve each other rather than");
    println!("adding CPU damage.\n");

    println!("QoS with four accelerators attached (th_2):\n");
    let mut b = ExperimentBuilder::new(cfg).cpu_app("x264");
    for _ in 0..4 {
        b = b.gpu_app("sssp");
    }
    let unprotected = b.run();
    let mut b = ExperimentBuilder::new(cfg)
        .cpu_app("x264")
        .qos(QosParams::threshold_percent(2.0));
    for _ in 0..4 {
        b = b.gpu_app("sssp");
    }
    let protected = b.run();
    println!(
        "  unprotected: SSR overhead {:.1}%, runtime {}",
        unprotected.cpu_ssr_overhead * 100.0,
        unprotected.cpu_app_runtime.unwrap()
    );
    println!(
        "  th_2       : SSR overhead {:.1}%, runtime {}",
        protected.cpu_ssr_overhead * 100.0,
        protected.cpu_app_runtime.unwrap()
    );
}
