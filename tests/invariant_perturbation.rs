//! Perturbation tests on the conservation-law sanitizer
//! (`hiss_obs::invariants`): a finalized run snapshot must audit clean
//! exactly as produced, and flipping any single counter must be caught
//! whenever it breaks a declared law. The proptest cross-checks the
//! auditor against a naive re-evaluation of the invariant table, so a
//! bug in the auditor's term aggregation cannot hide behind the table
//! it shares with the oracle's *selection* of laws.

use std::sync::OnceLock;

use hiss::{CriticalityConfig, ExperimentBuilder, SystemConfig};
use hiss_obs::invariants::{audit, invariants_for, Invariant, Rel, Term};
use hiss_obs::schema::{pattern_matches, Scope};
use hiss_obs::{MetricValue, MetricsRegistry};
use proptest::prelude::*;

/// One finalized run registry, computed once — the perturbation corpus.
fn base_snapshot() -> &'static MetricsRegistry {
    static SNAP: OnceLock<MetricsRegistry> = OnceLock::new();
    SNAP.get_or_init(|| {
        ExperimentBuilder::new(SystemConfig::a10_7850k())
            .cpu_app("x264")
            .gpu_app("ubench")
            .run()
            .metrics
    })
}

/// A criticality-class run: publishes the `qos.classes` marker, so the
/// guarded per-class split laws are armed in this corpus.
fn crit_snapshot() -> &'static MetricsRegistry {
    static SNAP: OnceLock<MetricsRegistry> = OnceLock::new();
    SNAP.get_or_init(|| {
        ExperimentBuilder::new(SystemConfig::a10_7850k())
            .cpu_app("x264")
            .gpu_app("ubench")
            .criticality(CriticalityConfig::default())
            .run()
            .metrics
    })
}

/// Independent re-implementation of guard applicability (the auditor's
/// `applies` is deliberately not reused here).
fn guard_applies(inv: &Invariant, reg: &MetricsRegistry) -> bool {
    match inv.guard {
        None => true,
        Some(g) => reg.iter().any(|(name, _)| pattern_matches(g, name)),
    }
}

fn counter_names(reg: &MetricsRegistry) -> Vec<String> {
    reg.iter()
        .filter(|(_, v)| matches!(v, MetricValue::Counter(_)))
        .map(|(n, _)| n.to_string())
        .collect()
}

/// Naive term evaluation, written against the public pattern matcher.
fn eval_term(reg: &MetricsRegistry, term: Term) -> u128 {
    let mut acc: u128 = 0;
    for (name, value) in reg.iter() {
        if !pattern_matches(term.pattern(), name) {
            continue;
        }
        match term {
            Term::Sum(_) => {
                if let MetricValue::Counter(v) = value {
                    acc += *v as u128;
                }
            }
            Term::Count(_) => acc += 1,
        }
    }
    acc
}

/// Re-evaluates every run-scope law from scratch: the oracle the
/// auditor is differentially tested against.
fn naive_violations(reg: &MetricsRegistry) -> Vec<&'static str> {
    invariants_for(Scope::Run)
        .filter_map(|inv| {
            if !guard_applies(inv, reg) {
                return None;
            }
            let lhs: u128 = inv.lhs.iter().map(|t| eval_term(reg, *t)).sum();
            let rhs: u128 = inv.rhs.iter().map(|t| eval_term(reg, *t)).sum();
            let holds = match inv.rel {
                Rel::Eq => lhs == rhs,
                Rel::Le => lhs <= rhs,
            };
            (!holds).then_some(inv.name)
        })
        .collect()
}

/// Whether `name` contributes to one side of `terms` as a summed
/// counter.
fn in_sums(name: &str, terms: &[Term]) -> bool {
    terms
        .iter()
        .any(|t| matches!(t, Term::Sum(_)) && pattern_matches(t.pattern(), name))
}

#[test]
fn untouched_snapshot_audits_clean_and_round_trips_byte_for_byte() {
    let reg = base_snapshot();
    let report = audit(reg, Scope::Run);
    assert!(report.clean(), "{:?}", report.violations);
    assert!(report.checked > 0, "no run-scope laws were evaluated");

    let json = reg.to_json();
    let back = MetricsRegistry::from_json(&json).expect("round trip parses");
    assert_eq!(back.to_json(), json, "round trip must be byte-identical");
    assert!(audit(&back, Scope::Run).clean());
}

/// For every equality law, bumping a counter that appears on exactly
/// one of its sides must produce a violation naming that law. This is
/// the sanitizer's whole job stated as a sweep: no single-counter
/// corruption of a conserved quantity goes unnoticed.
#[test]
fn every_one_sided_bump_on_an_equality_is_flagged() {
    // The default corpus leaves the guarded class laws dormant; the
    // criticality corpus arms them, so together the sweep covers the
    // whole equality table.
    let exercised = one_sided_bump_sweep(base_snapshot());
    assert!(exercised >= 5, "only {exercised} equality laws exercised");
    let with_classes = one_sided_bump_sweep(crit_snapshot());
    assert!(
        with_classes >= exercised + 6,
        "class corpus exercised only {with_classes} laws (base {exercised})"
    );
}

fn one_sided_bump_sweep(base: &MetricsRegistry) -> usize {
    let names = counter_names(base);
    let mut exercised = 0usize;
    for inv in invariants_for(Scope::Run).filter(|i| i.rel == Rel::Eq) {
        if !guard_applies(inv, base) {
            continue; // guarded law whose marker this corpus lacks
        }
        let Some(name) = names
            .iter()
            .find(|n| in_sums(n, inv.lhs) != in_sums(n, inv.rhs))
        else {
            continue; // law over families this workload never publishes
        };
        exercised += 1;
        let mut reg = base.clone();
        let old = reg.counter_value(name).unwrap();
        reg.counter(name.clone(), old + 1);
        let report = audit(&reg, Scope::Run);
        assert!(
            report.violations.iter().any(|v| v.name == inv.name),
            "bumping `{name}` did not trip `{}`: {:?}",
            inv.name,
            report.violations
        );
    }
    exercised
}

/// The per-class split laws police exactly the runs that carry classes:
/// dormant (and unfireable) on a default snapshot, armed and tight on a
/// criticality snapshot.
#[test]
fn guarded_class_laws_police_only_runs_that_carry_classes() {
    let base = base_snapshot();
    assert!(base.counter_value("qos.classes").is_none());
    let base_checked = audit(base, Scope::Run).checked;

    let crit = crit_snapshot();
    let report = audit(crit, Scope::Run);
    assert!(report.clean(), "{:?}", report.violations);
    assert!(
        report.checked >= base_checked + 6,
        "class marker must arm the guarded laws: {} vs {}",
        report.checked,
        base_checked
    );

    // A single lost best-effort request is caught by the armed split law.
    let mut reg = crit.clone();
    let old = reg.counter_value("qos.class1.requests").unwrap();
    reg.counter("qos.class1.requests".to_string(), old + 1);
    let broken = audit(&reg, Scope::Run);
    assert!(
        broken
            .violations
            .iter()
            .any(|v| v.name == "class_requests_split"),
        "{:?}",
        broken.violations
    );
}

/// The boundary case of the calendar bound: popped = pushed is legal,
/// popped = pushed + 1 is not, and the violation names the law with
/// both sides of the failed comparison.
#[test]
fn calendar_bound_is_tight() {
    let pushed = base_snapshot().counter_value("run.events_pushed").unwrap();

    let mut reg = base_snapshot().clone();
    reg.counter("run.events_popped", pushed);
    assert!(audit(&reg, Scope::Run).clean());

    reg.counter("run.events_popped", pushed + 1);
    let report = audit(&reg, Scope::Run);
    let v = report
        .violations
        .iter()
        .find(|v| v.name == "events_popped_bounded")
        .expect("overshoot must be flagged");
    assert!(v.detail.contains("run.events_popped"), "{}", v.detail);
    assert!(v.detail.contains(&(pushed + 1).to_string()), "{}", v.detail);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential sweep: perturb one arbitrary counter by an
    /// arbitrary amount in either direction; the auditor must report
    /// exactly the laws the naive evaluator says are broken — no
    /// misses, no false alarms — and any one-sided hit on an equality
    /// must surface.
    #[test]
    fn audit_agrees_with_naive_reevaluation_under_mutation(
        idx in 0usize..10_000,
        delta in 1u64..1_001,
        bump_up in any::<bool>(),
    ) {
        let base = base_snapshot();
        let names = counter_names(base);
        let name = &names[idx % names.len()];
        let mut reg = base.clone();
        let old = reg.counter_value(name).unwrap();
        let new = if bump_up {
            old.saturating_add(delta)
        } else {
            old.saturating_sub(delta)
        };
        reg.counter(name.clone(), new);

        let got: Vec<&str> = audit(&reg, Scope::Run)
            .violations
            .iter()
            .map(|v| v.name)
            .collect();
        prop_assert_eq!(&got, &naive_violations(&reg));

        if new != old {
            for inv in invariants_for(Scope::Run).filter(|i| i.rel == Rel::Eq) {
                if guard_applies(inv, &reg) && in_sums(name, inv.lhs) != in_sums(name, inv.rhs) {
                    prop_assert!(
                        got.contains(&inv.name),
                        "mutating `{}` must trip `{}`",
                        name,
                        inv.name
                    );
                }
            }
        }
    }
}
