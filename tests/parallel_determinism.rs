//! The parallel experiment engine must be invisible in the output:
//! figure grids computed on the job pool are required to be bit-for-bit
//! identical to the serial path, whatever the worker count and whatever
//! the cache state. These tests pin that contract for a representative
//! row-grid (`fig3`) and a reduced grid (`pareto`), including the
//! `HISS_THREADS` override the runner sizes itself from.

use hiss::experiments::{fig3, pareto, test_cpu_subset, test_gpu_subset, BaselineCache};
use hiss::{
    run_jobs_on, CoreId, CriticalityConfig, DeviceSpec, DmaParams, ExperimentBuilder, Mitigation,
    NicParams, SystemConfig,
};

/// Exact (bit-level) fingerprint of a Fig. 3 grid.
fn fig3_bits(rows: &[fig3::Fig3Row]) -> Vec<(String, String, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.cpu_app.clone(),
                r.gpu_app.clone(),
                r.cpu_perf.to_bits(),
                r.gpu_perf.to_bits(),
            )
        })
        .collect()
}

/// Exact (bit-level) fingerprint of a Pareto chart.
fn pareto_bits(points: &[pareto::ParetoPoint]) -> Vec<(String, u64, u64)> {
    points
        .iter()
        .map(|p| {
            (
                p.mitigation.label(),
                p.cpu_geomean.to_bits(),
                p.gpu_geomean.to_bits(),
            )
        })
        .collect()
}

/// One test owns the `HISS_THREADS` variable end to end: tests within a
/// binary run on concurrent threads, so the env mutation must not be
/// split across several `#[test]` functions.
#[test]
fn hiss_threads_1_and_8_produce_identical_grids() {
    let cfg = SystemConfig::a10_7850k();
    let cpu = test_cpu_subset();
    let gpu = test_gpu_subset();
    let combos = [
        Mitigation::DEFAULT,
        Mitigation {
            coalesce: true,
            ..Mitigation::DEFAULT
        },
    ];

    std::env::set_var("HISS_THREADS", "1");
    BaselineCache::global().clear();
    let fig3_serial = fig3::fig3_with(&cfg, &cpu, &gpu);
    let pareto_serial = pareto::pareto_with(&cfg, &cpu, &["ubench"], &combos);

    // The calendar's own accounting must be as thread-invariant as the
    // simulation results: per-run events pushed/popped/peak are part of
    // the bench gate, so the runner must not perturb them either.
    let counters = |threads: &str| -> Vec<(u64, u64, u64)> {
        std::env::set_var("HISS_THREADS", threads);
        let n: usize = threads.parse().expect("numeric HISS_THREADS");
        run_jobs_on(n, gpu.len(), |i| {
            let r = ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app(gpu[i])
                .run();
            (
                r.metrics.counter_value("run.events_pushed").unwrap(),
                r.metrics.counter_value("run.events_popped").unwrap(),
                r.metrics.counter_value("run.events_peak").unwrap(),
            )
        })
    };
    let counters_serial = counters("1");

    // Mixed device topologies (GPU + NIC + DMA, one steered) must be as
    // thread-invariant as the all-GPU grids: the full metric snapshot —
    // `devN.*` rows included — is pinned byte-identical across worker
    // counts.
    let device_snapshots = |threads: &str| -> Vec<String> {
        std::env::set_var("HISS_THREADS", threads);
        let n: usize = threads.parse().expect("numeric HISS_THREADS");
        run_jobs_on(n, gpu.len(), |i| {
            ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app(gpu[i])
                .device(DeviceSpec::Nic(NicParams::default()))
                .device_steered(DeviceSpec::Dma(DmaParams::default()), Some(CoreId(2)))
                .run()
                .metrics
                .to_json()
        })
    };
    let devices_serial = device_snapshots("1");

    // Mixed-criticality partitions publish per-class metric families
    // (`qos.classN.*`) and reroute interrupts off reserved cores; both
    // must be as thread-invariant as everything else, snapshot
    // byte-identical across worker counts.
    let crit_snapshots = |threads: &str| -> Vec<String> {
        std::env::set_var("HISS_THREADS", threads);
        let n: usize = threads.parse().expect("numeric HISS_THREADS");
        run_jobs_on(n, gpu.len(), |i| {
            ExperimentBuilder::new(cfg)
                .cpu_app("x264")
                .gpu_app(gpu[i])
                .device(DeviceSpec::Nic(NicParams::default()))
                .criticality(CriticalityConfig {
                    critical_device_mask: 0b10,
                    ..CriticalityConfig::default()
                })
                .run()
                .metrics
                .to_json()
        })
    };
    let crit_serial = crit_snapshots("1");

    std::env::set_var("HISS_THREADS", "8");
    BaselineCache::global().clear();
    let fig3_parallel = fig3::fig3_with(&cfg, &cpu, &gpu);
    let pareto_parallel = pareto::pareto_with(&cfg, &cpu, &["ubench"], &combos);
    let counters_parallel = counters("8");
    let devices_parallel = device_snapshots("8");
    let crit_parallel = crit_snapshots("8");

    // And once more against a *warm* cache: memoized baselines must not
    // change any value either.
    std::env::set_var("HISS_THREADS", "8");
    let fig3_warm = fig3::fig3_with(&cfg, &cpu, &gpu);
    std::env::remove_var("HISS_THREADS");

    assert_eq!(fig3_serial.len(), cpu.len() * gpu.len());
    assert_eq!(fig3_bits(&fig3_serial), fig3_bits(&fig3_parallel));
    assert_eq!(fig3_bits(&fig3_serial), fig3_bits(&fig3_warm));
    assert_eq!(pareto_bits(&pareto_serial), pareto_bits(&pareto_parallel));
    assert_eq!(counters_serial, counters_parallel);
    assert_eq!(devices_serial, devices_parallel);
    assert_eq!(crit_serial, crit_parallel);
    for snap in &crit_serial {
        assert!(
            snap.contains("\"qos.classes\":2") && snap.contains("\"qos.class0.requests\""),
            "per-class rows missing from snapshot: {snap}"
        );
    }
    for snap in &devices_serial {
        assert!(
            snap.contains("\"dev1.kind\":\"nic\"") && snap.contains("\"dev2.kind\":\"dma\""),
            "device rows missing from snapshot: {snap}"
        );
    }
    for (pushed, popped, peak) in counters_serial {
        // Conservation: peak is a real high watermark, and the loop's
        // early exit is the only reason pops may trail pushes.
        assert!(peak >= 1 && peak <= pushed);
        assert!(popped <= pushed);
    }
}

/// The runner itself, driven with explicit worker counts over real
/// simulation jobs: scheduling must not leak into results or order.
#[test]
fn explicit_worker_counts_agree_on_simulation_results() {
    let cfg = SystemConfig::a10_7850k();
    let cells: Vec<(&str, &str)> = ["x264", "raytrace"]
        .iter()
        .flat_map(|c| ["sssp", "ubench"].iter().map(move |g| (*c, *g)))
        .collect();
    let job = |i: usize| {
        let (cpu_app, gpu_app) = cells[i];
        let r = ExperimentBuilder::new(cfg)
            .cpu_app(cpu_app)
            .gpu_app(gpu_app)
            .run();
        (
            r.elapsed,
            r.cpu_app_runtime,
            r.kernel.ssrs_serviced,
            r.kernel.ipis,
        )
    };
    let serial = run_jobs_on(1, cells.len(), job);
    for threads in [2, 4, 8] {
        let parallel = run_jobs_on(threads, cells.len(), job);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}
