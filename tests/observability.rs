//! Observability acceptance tests for the `hiss-obs` metrics layer.
//!
//! Two contracts from the design:
//!
//! 1. **Determinism** — `RunReport::metrics` is built purely from
//!    simulation state, so serialized snapshots must be *byte-identical*
//!    whatever `HISS_THREADS` says (wall-clock profiling lives in the
//!    separate batch profile, never in a run snapshot).
//! 2. **Sufficiency** — the paper's headline numbers (the 477× IPI
//!    inflation of §IV-C, the coalescing interrupt reduction of §V-B,
//!    and the 86% → 12% CC6 collapse of Fig. 4) must be reproducible
//!    from parsed JSON snapshots alone, without touching `RunReport`
//!    fields.

use hiss::experiments::BaselineCache;
use hiss::{ExperimentBuilder, MetricsRegistry, Mitigation, QosParams, RunReport, SystemConfig};
use hiss_obs::schema::{self, MetricKind, Scope};
use hiss_obs::MetricValue;
use hiss_scenario::{run_with_metrics, Scenario};

const SCENARIO: &str = r#"
[scenario]
name = "obs-probe"
[workload]
cpu = ["x264"]
gpu = ["ubench", "bfs"]
[run]
replicas = 2
[sweep]
mitigation = ["default", "steer+coalesce"]
"#;

/// Serializes every cell snapshot of a batch to its JSON line.
fn snapshot_lines(sc: &Scenario) -> Vec<String> {
    run_with_metrics(sc, true)
        .iter()
        .map(|(_, m)| m.to_json())
        .collect()
}

/// One test owns `HISS_THREADS` end to end (tests in a binary share the
/// process environment, so the mutation must not span `#[test]`s).
#[test]
fn snapshots_are_byte_identical_across_worker_counts() {
    let sc = Scenario::from_str(SCENARIO).unwrap();

    std::env::set_var("HISS_THREADS", "1");
    BaselineCache::global().clear();
    let serial = snapshot_lines(&sc);

    std::env::set_var("HISS_THREADS", "8");
    BaselineCache::global().clear();
    let parallel = snapshot_lines(&sc);
    std::env::remove_var("HISS_THREADS");

    // 2 gpu × 1 cpu × 2 replicas × 2 sweep points.
    assert_eq!(serial.len(), 8);
    assert_eq!(serial, parallel, "snapshot JSON must not depend on threads");

    for line in &serial {
        let parsed = MetricsRegistry::from_json(line).unwrap();
        assert_eq!(&parsed.to_json(), line, "round-trip must be lossless");
        // Wall-clock profiling is batch-level by design; a run snapshot
        // containing it could never be deterministic.
        for (key, _) in parsed.iter() {
            assert!(
                !key.starts_with("pool.") && !key.starts_with("baseline_cache."),
                "wall-clock metric {key} leaked into a run snapshot"
            );
        }
    }
}

/// Round-trips a report's metrics through JSON, returning only what a
/// consumer of the serialized snapshot would see.
fn reparse(report: &RunReport) -> MetricsRegistry {
    MetricsRegistry::from_json(&report.metrics.to_json()).unwrap()
}

fn counter(m: &MetricsRegistry, key: &str) -> u64 {
    m.counter_value(key)
        .unwrap_or_else(|| panic!("snapshot missing counter {key}"))
}

fn gauge(m: &MetricsRegistry, key: &str) -> f64 {
    m.gauge_value(key)
        .unwrap_or_else(|| panic!("snapshot missing gauge {key}"))
}

/// §IV-C: the 477× IPI headline, measured from snapshots alone. The
/// model's pinned baseline raises no SSR IPIs at all, so the inflation
/// factor is unbounded — comfortably past the paper's near-three
/// orders of magnitude.
#[test]
fn ipi_inflation_reproducible_from_snapshot() {
    let cfg = SystemConfig::a10_7850k();
    let with_ssrs = reparse(
        &ExperimentBuilder::new(cfg)
            .cpu_app("blackscholes")
            .gpu_app("ubench")
            .run(),
    );
    let without_ssrs = reparse(
        &ExperimentBuilder::new(cfg)
            .cpu_app("blackscholes")
            .gpu_app_pinned("ubench")
            .run(),
    );
    assert!(counter(&with_ssrs, "kernel.ipis") > 100);
    assert_eq!(counter(&without_ssrs, "kernel.ipis"), 0);
    // Interrupts evenly spread across the four cores (§IV-C item 1).
    let per_core: Vec<u64> = (0..4)
        .map(|c| counter(&with_ssrs, &format!("kernel.interrupts.core{c}")))
        .collect();
    let max = *per_core.iter().max().unwrap() as f64;
    let min = *per_core.iter().min().unwrap() as f64;
    assert!(min > 0.0 && max / min < 1.5, "imbalance: {per_core:?}");
}

/// §V-B: interrupt coalescing cuts interrupts per serviced SSR (paper:
/// 16% on average), computed purely from two parsed snapshots.
#[test]
fn coalescing_reduction_reproducible_from_snapshot() {
    let cfg = SystemConfig::a10_7850k();
    let rate = |m: &MetricsRegistry| {
        counter(m, "kernel.interrupts.total") as f64 / counter(m, "kernel.ssrs_serviced") as f64
    };
    let reductions: Vec<f64> = ["ubench", "sssp"]
        .iter()
        .map(|gpu_app| {
            let plain = reparse(
                &ExperimentBuilder::new(cfg)
                    .cpu_app("blackscholes")
                    .gpu_app(gpu_app)
                    .run(),
            );
            let coal = reparse(
                &ExperimentBuilder::new(cfg)
                    .cpu_app("blackscholes")
                    .gpu_app(gpu_app)
                    .mitigation(Mitigation {
                        coalesce: true,
                        ..Mitigation::DEFAULT
                    })
                    .run(),
            );
            1.0 - rate(&coal) / rate(&plain)
        })
        .collect();
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        (0.02..=0.7).contains(&mean),
        "coalescing reduction {mean} (paper: 0.16)"
    );
}

fn kind_matches(value: &MetricValue, kind: MetricKind) -> bool {
    matches!(
        (value, kind),
        (MetricValue::Counter(_), MetricKind::Counter)
            | (MetricValue::Gauge(_), MetricKind::Gauge)
            | (MetricValue::Label(_), MetricKind::Label)
            | (MetricValue::Histogram(_), MetricKind::Histogram)
    )
}

/// Asserts every metric in `reg` is declared in the schema with the
/// right kind, in one of the `scopes`.
fn assert_conforms(reg: &MetricsRegistry, scopes: &[Scope], what: &str) {
    for (name, value) in reg.iter() {
        let entry = schema::lookup(name)
            .unwrap_or_else(|| panic!("{what}: `{name}` is not declared in the schema"));
        assert!(
            kind_matches(value, entry.kind),
            "{what}: `{name}` is a {value:?} but the schema declares {}",
            entry.kind.as_str()
        );
        assert!(
            scopes.contains(&entry.scope),
            "{what}: `{name}` has scope {:?}, outside {scopes:?}",
            entry.scope
        );
    }
}

/// Schema conformance: a real run (with a QoS governor, so `qos.*` is
/// present), a scenario cell snapshot, and the wall-clock batch profile
/// publish only names the static `hiss_obs::schema` declares — the
/// third leg of the lint triangle (the other two, `[expect]` metrics
/// and `docs/OBSERVABILITY.md`, are checked by `hiss-cli lint`).
#[test]
fn published_metrics_conform_to_the_declared_schema() {
    let cfg = SystemConfig::a10_7850k();
    let report = ExperimentBuilder::new(cfg)
        .cpu_app("x264")
        .gpu_app("ubench")
        .qos(QosParams::threshold_percent(5.0))
        .run();
    assert_conforms(&report.metrics, &[Scope::Run], "run registry");

    let sc = Scenario::from_str(SCENARIO).unwrap();
    let (pairs, profile) = hiss_scenario::run_profiled(&sc, true);
    for (_, cell) in &pairs {
        assert_conforms(cell, &[Scope::Run, Scope::Cell], "cell snapshot");
    }
    assert_conforms(&profile, &[Scope::Profile], "batch profile");
}

/// §IV-B / Fig. 4: ubench SSRs collapse CC6 residency from 86% to 12%;
/// both residencies read back from serialized snapshots.
#[test]
fn cc6_collapse_reproducible_from_snapshot() {
    let cfg = SystemConfig::a10_7850k();
    let quiet = reparse(&ExperimentBuilder::new(cfg).gpu_app_pinned("ubench").run());
    let noisy = reparse(&ExperimentBuilder::new(cfg).gpu_app("ubench").run());
    let no_ssr = gauge(&quiet, "run.cc6_residency");
    let ssr = gauge(&noisy, "run.cc6_residency");
    assert!(no_ssr > 0.75, "no-SSR residency {no_ssr} (paper: 0.86)");
    assert!(ssr < 0.30, "SSR residency {ssr} (paper: 0.12)");
}
