//! Bench-subsystem regression harness (see `docs/BENCH.md`), in the
//! style of `tests/lint.rs`: the committed `BENCH_BASELINE.json` must
//! stay parseable, schema-clean, and in agreement with a fresh run; a
//! doctored baseline must make `hiss-cli bench check` fail with a
//! `file:line:`-style diff; and the deterministic-counter report must
//! be byte-identical whatever `HISS_THREADS` is.
//!
//! The CLI end-to-end tests run `bench run` once into a snapshot file
//! and replay it through `bench check --fresh`, so each test re-uses
//! the same simulation work instead of re-running the grids.

use std::path::{Path, PathBuf};
use std::process::Command;

use hiss_bench::baseline::{self, SuiteSnapshot};

/// Measure allocation in-process the same way `hiss-cli` does, so
/// library-level suite runs in this harness see real counters too.
#[global_allocator]
static ALLOC: hiss_bench::CountingAlloc = hiss_bench::CountingAlloc::new();

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hiss-cli"));
    cmd.current_dir(repo_root());
    cmd
}

fn committed_baseline() -> baseline::BaselineFile {
    let text = std::fs::read_to_string(repo_root().join(baseline::DEFAULT_PATH)).unwrap();
    baseline::parse(&text).expect("committed baseline parses")
}

#[test]
fn committed_baseline_parses_and_covers_every_suite() {
    let file = committed_baseline();
    assert!(file.reason().is_some_and(|r| !r.is_empty()));
    for suite in hiss_serve::suite::SUITES {
        assert!(
            file.suite(suite).is_some(),
            "baseline is missing suite {suite}"
        );
    }
    assert_eq!(file.suites.len(), hiss_serve::suite::SUITES.len());
}

#[test]
fn committed_baseline_lints_clean_against_the_schema() {
    let text = std::fs::read_to_string(repo_root().join(baseline::DEFAULT_PATH)).unwrap();
    let diags = hiss_lint::baseline::check_baseline(baseline::DEFAULT_PATH, &text);
    assert!(diags.is_empty(), "{diags:?}");
}

/// Runs the suites in-process and compares against the committed
/// baseline through the library comparator — the same check the CLI
/// gate performs, without process overhead.
#[test]
fn fresh_library_run_matches_the_committed_baseline() {
    let snaps = hiss_serve::suite::run_all(&repo_root()).unwrap();
    let cmp = hiss_bench::compare::compare(&committed_baseline(), &snaps);
    let shown: Vec<String> = cmp
        .findings
        .iter()
        .map(|f| f.render(baseline::DEFAULT_PATH))
        .collect();
    assert!(cmp.passed(), "{shown:#?}");
}

#[test]
fn cli_bench_check_passes_on_the_committed_tree_and_fails_when_doctored() {
    // One real run, captured to a snapshot file both checks replay.
    let fresh = tmp("fresh.jsonl");
    let out = cli()
        .args(["bench", "run", "--out", fresh.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "bench run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args(["bench", "check", "--fresh", fresh.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "check failed on committed tree:\n{stdout}"
    );
    assert!(stdout.contains("bench check: ok"), "{stdout}");

    // Doctor one deterministic counter by one: the check must fail and
    // say where, file:line-style, naming the counter.
    let file = committed_baseline();
    let target = file.suite("fig3_quick").expect("fig3_quick in baseline");
    let old = target
        .metrics
        .counter_value("bench.total.events_pushed")
        .expect("total events counter in baseline");
    let mut doctored = file.suites.clone();
    for s in &mut doctored {
        if s.suite == "fig3_quick" {
            s.metrics.counter("bench.total.events_pushed", old + 1);
        }
    }
    let doctored_path = tmp("doctored_baseline.json");
    std::fs::write(
        &doctored_path,
        baseline::render(file.reason().unwrap(), &doctored),
    )
    .unwrap();

    let out = cli()
        .args([
            "bench",
            "check",
            "--baseline",
            doctored_path.to_str().unwrap(),
            "--fresh",
            fresh.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "doctored baseline passed:\n{stdout}");
    // Readable diff: a file:line: anchor, the counter, both values.
    let diff_line = stdout
        .lines()
        .find(|l| l.contains("bench.total.events_pushed"))
        .unwrap_or_else(|| panic!("no diff line names the counter:\n{stdout}"));
    let prefix = format!("{}:", doctored_path.display());
    assert!(diff_line.starts_with(&prefix), "{diff_line}");
    assert!(
        diff_line.contains("violation") && diff_line.contains(&(old + 1).to_string()),
        "{diff_line}"
    );
    assert!(stdout.contains("violation(s)"), "{stdout}");
}

/// The acceptance-criteria pin: the deterministic-counter report on
/// stdout is byte-identical under `HISS_THREADS=1` and `HISS_THREADS=8`
/// (wall-clock goes to stderr and the snapshot file only).
#[test]
#[ignore = "runs every suite twice; CI runs it in the bench-gate job"]
fn bench_run_stdout_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = cli()
            .args(["bench", "run"])
            .env("HISS_THREADS", threads)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "bench run failed under HISS_THREADS={threads}"
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let t1 = run("1");
    let t8 = run("8");
    assert_eq!(
        t1, t8,
        "deterministic-counter report depends on worker count"
    );
    assert!(t1.contains("bench.total.events_pushed"));
    assert!(!t1.contains("bench.wall."), "wall-clock leaked into stdout");
}

/// The `perf_report` example's machine-readable line must keep every
/// `engine_*` key (CI dashboards key on them), and the counters those
/// keys are computed from must still exist after the `BaselineCache`
/// disk-tier refactor. Running the example here would re-time the fig3
/// grid three times, so this pins the emitted key set at the source
/// level and exercises the exact inputs in-process instead.
#[test]
fn perf_report_example_still_emits_every_engine_key() {
    let source = std::fs::read_to_string(repo_root().join("examples/perf_report.rs")).unwrap();
    for key in [
        "engine_events_per_sec",
        "engine_events_per_run",
        "engine_allocs_per_run",
        "engine_alloc_bytes_per_run",
    ] {
        assert!(
            source.contains(&format!("\\\"{key}\\\"")),
            "perf_report.rs no longer emits {key}"
        );
    }

    // The keys are derived from one instrumented engine run: the event
    // counter and the allocation probe must both still report.
    let probe = hiss_bench::AllocProbe::start();
    let report = hiss::ExperimentBuilder::new(hiss::SystemConfig::a10_7850k())
        .cpu_app("x264")
        .gpu_app("ubench")
        .run();
    let (alloc_bytes, allocs) = probe.finish();
    assert!(
        report
            .metrics
            .counter_value("run.events_popped")
            .unwrap_or(0)
            > 0,
        "engine_events_per_run input vanished"
    );
    assert!(allocs > 0 && alloc_bytes > 0, "alloc probe reports nothing");

    // And the cache API surface the example leans on survives the
    // refactor: clear/len/hit_count/miss_count on the global cache.
    let cache = hiss::BaselineCache::global();
    cache.clear();
    assert_eq!(cache.len(), 0);
    let _ = (cache.hit_count(), cache.miss_count());
}

#[test]
fn cli_bench_update_requires_a_reason_and_records_it() {
    // Refuses without --reason.
    let out = cli().args(["bench", "update"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--reason"), "{stderr}");

    // With --reason and a synthetic fresh snapshot, writes a parseable
    // baseline carrying the reason, and preserves wall entries for
    // thread counts the fresh run did not measure.
    let mut metrics = hiss::MetricsRegistry::new();
    metrics.label("bench.suite", "engine");
    metrics.counter("bench.cells", 1);
    metrics.gauge("bench.wall.t1.s", 0.5);
    let snap = SuiteSnapshot {
        line: 0,
        suite: "engine".into(),
        metrics,
    };
    let fresh_path = tmp("update_fresh.jsonl");
    std::fs::write(
        &fresh_path,
        baseline::render("(fresh)", std::slice::from_ref(&snap)),
    )
    .unwrap();

    let mut old_metrics = snap.metrics.clone();
    old_metrics.gauge("bench.wall.t8.s", 0.125);
    let old_path = tmp("update_baseline.json");
    std::fs::write(
        &old_path,
        baseline::render(
            "older reason",
            &[SuiteSnapshot {
                line: 0,
                suite: "engine".into(),
                metrics: old_metrics,
            }],
        ),
    )
    .unwrap();

    let out = cli()
        .args([
            "bench",
            "update",
            "--reason",
            "test reason",
            "--baseline",
            old_path.to_str().unwrap(),
            "--fresh",
            fresh_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = baseline::parse(&std::fs::read_to_string(&old_path).unwrap()).unwrap();
    assert_eq!(written.reason(), Some("test reason"));
    let engine = written.suite("engine").unwrap();
    assert_eq!(engine.metrics.gauge_value("bench.wall.t1.s"), Some(0.5));
    assert_eq!(engine.metrics.gauge_value("bench.wall.t8.s"), Some(0.125));
}
