//! Golden-scenario regression harness: every committed
//! `scenarios/*.hiss` file must parse, expand, run in quick mode, and
//! satisfy its own `[expect]` bands — so a behaviour change anywhere in
//! the simulator trips the band of whichever scenario observes it.
//!
//! The fig3 scenario is additionally pinned bit-for-bit against the
//! `hiss::experiments::fig3` module it re-expresses: the declarative
//! path and the hard-coded path must be the same experiment.

use std::path::{Path, PathBuf};

use hiss::experiments::fig3;
use hiss::SystemConfig;
use hiss_scenario::{check, expand, load, output, run, Scenario};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_scenarios() -> Vec<PathBuf> {
    let files = hiss_scenario::list_files(&scenarios_dir()).expect("scenarios/ exists");
    assert!(
        files.len() >= 6,
        "expected the committed scenario library, found {files:?}"
    );
    files
}

/// Every committed scenario parses, and both its full and quick grids
/// are non-empty and well-formed.
#[test]
fn committed_scenarios_validate() {
    for path in committed_scenarios() {
        let sc = load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for quick in [false, true] {
            let cells = expand(&sc, quick);
            assert!(!cells.is_empty(), "{}: empty grid", path.display());
        }
        assert!(
            !sc.expects.is_empty(),
            "{}: committed scenarios must carry expect bands",
            path.display()
        );
    }
}

/// The harness proper: run every committed scenario in quick mode and
/// enforce its `[expect]` bands.
#[test]
fn committed_scenarios_hold_their_expect_bands() {
    for path in committed_scenarios() {
        let sc = load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rows = run(&sc, true);
        assert_eq!(rows.len(), expand(&sc, true).len(), "{}", path.display());
        let violations = check(&sc, &rows);
        assert!(
            violations.is_empty(),
            "{}:\n{}",
            path.display(),
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The declarative fig3 scenario is the same experiment as the fig3
/// module: identical grid order, bit-identical values (quick subsets).
#[test]
fn fig3_scenario_is_bit_identical_to_fig3_module() {
    let sc = load(&scenarios_dir().join("fig3.hiss")).unwrap();
    let rows = run(&sc, true);

    let cfg = SystemConfig::a10_7850k();
    let cpu: Vec<&str> = sc.cpu_apps(true).iter().map(String::as_str).collect();
    let gpu: Vec<&str> = sc.gpu_apps(true).iter().map(String::as_str).collect();
    let module = fig3::fig3_with(&cfg, &cpu, &gpu);

    assert_eq!(rows.len(), module.len());
    for (r, m) in rows.iter().zip(&module) {
        assert_eq!((&r.cpu_app, &r.gpu_app), (&m.cpu_app, &m.gpu_app));
        assert_eq!(
            r.cpu_perf.expect("fig3 cells finish").to_bits(),
            m.cpu_perf.to_bits(),
            "{}×{} cpu_perf",
            r.cpu_app,
            r.gpu_app
        );
        assert_eq!(
            r.gpu_perf.to_bits(),
            m.gpu_perf.to_bits(),
            "{}×{} gpu_perf",
            r.cpu_app,
            r.gpu_app
        );
    }
}

/// Full 13 × 6 grid bit-identity — the acceptance criterion for
/// `hiss-cli scenario run scenarios/fig3.hiss`. Ignored by default
/// (runs the whole paper grid twice); `cargo test -- --ignored` covers
/// it.
#[test]
#[ignore = "full paper grid; run with --ignored"]
fn fig3_scenario_full_grid_is_bit_identical() {
    let sc = load(&scenarios_dir().join("fig3.hiss")).unwrap();
    let rows = run(&sc, false);

    let cfg = SystemConfig::a10_7850k();
    let cpu: Vec<&str> = sc.cpu_apps(false).iter().map(String::as_str).collect();
    let gpu: Vec<&str> = sc.gpu_apps(false).iter().map(String::as_str).collect();
    let module = fig3::fig3_with(&cfg, &cpu, &gpu);

    assert_eq!(rows.len(), module.len());
    for (r, m) in rows.iter().zip(&module) {
        assert_eq!((&r.cpu_app, &r.gpu_app), (&m.cpu_app, &m.gpu_app));
        assert_eq!(r.cpu_perf.unwrap().to_bits(), m.cpu_perf.to_bits());
        assert_eq!(r.gpu_perf.to_bits(), m.gpu_perf.to_bits());
    }
}

/// JSON-lines output of a real batch re-parses to the same floats
/// (shortest-round-trip formatting is part of the bit-identity story).
#[test]
fn jsonl_round_trips_real_rows() {
    let sc = Scenario::from_str(
        r#"
[scenario]
name = "roundtrip"
[workload]
cpu = ["raytrace"]
gpu = ["sssp", "ubench"]
"#,
    )
    .unwrap();
    let rows = run(&sc, false);
    let jsonl = output::to_jsonl(&rows);
    for (line, row) in jsonl.lines().zip(&rows) {
        // Extract the gpu_perf field textually and re-parse.
        let field = line
            .split("\"gpu_perf\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .unwrap();
        let reparsed: f64 = field.parse().unwrap();
        assert_eq!(reparsed.to_bits(), row.gpu_perf.to_bits(), "{line}");
    }
}
