//! Fixture crate for the store-write lint (`HL305`): this file is
//! listed under `[scan] store_paths`, so each raw filesystem write
//! below — publishing a cache entry without the atomic
//! write-then-rename helper — must be flagged. Never compiled; the
//! scanner works on tokens.

use std::fs;

pub fn torn_publish(path: &std::path::Path, bytes: &[u8]) {
    // A reader can observe this entry half-written.
    fs::write(path, bytes).unwrap();
    let _f = fs::File::create(path.with_extension("idx")).unwrap();
    let _o = fs::OpenOptions::new().append(true).open(path);
}
