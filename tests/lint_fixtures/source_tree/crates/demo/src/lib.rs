//! Fixture crate for the determinism source lint: every banned
//! construct class appears once. This file is never compiled — the
//! scanner works on tokens, not on a build.

use std::collections::HashMap;
use std::time::Instant;

pub fn racy() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let t0 = Instant::now();
    let handle = std::thread::spawn(move || m.len());
    let _ = (t0.elapsed(), handle.join());
}
