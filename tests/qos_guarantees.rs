//! Property tests on the QoS governor's end-to-end guarantees (paper
//! §VI): the whole point of the mechanism is that the administrator's
//! threshold actually *bounds* CPU overhead, for any workload and any
//! mitigation combination, by backpressuring the accelerator.

use hiss::{ExperimentBuilder, Mitigation, QosParams, SystemConfig};
use proptest::prelude::*;

fn cfg() -> SystemConfig {
    SystemConfig::a10_7850k()
}

/// The headline guarantee: measured SSR overhead stays near the
/// configured ceiling (the paper allows slight overshoot because the
/// limit is enforced periodically, not continuously).
#[test]
fn overhead_respects_threshold() {
    for pct in [1.0, 5.0, 25.0] {
        let r = ExperimentBuilder::new(cfg())
            .cpu_app("x264")
            .gpu_app("ubench")
            .qos(QosParams::threshold_percent(pct))
            .run();
        let ceiling = pct / 100.0;
        assert!(
            r.cpu_ssr_overhead <= ceiling * 1.6 + 0.005,
            "th_{pct}: overhead {} exceeds ceiling {}",
            r.cpu_ssr_overhead,
            ceiling
        );
    }
}

/// Tighter thresholds never allow more accelerator throughput.
#[test]
fn throughput_monotone_in_threshold() {
    let rate = |pct: f64| {
        ExperimentBuilder::new(cfg())
            .cpu_app("swaptions")
            .gpu_app("ubench")
            .qos(QosParams::threshold_percent(pct))
            .run()
            .ssr_rate
    };
    let r1 = rate(1.0);
    let r5 = rate(5.0);
    let r25 = rate(25.0);
    assert!(r1 <= r5 * 1.05, "th_1 {} vs th_5 {}", r1, r5);
    assert!(r5 <= r25 * 1.05, "th_5 {} vs th_25 {}", r5, r25);
    assert!(r1 < r25 * 0.6, "sweep should span a real range");
}

/// Backpressure works through the hardware outstanding-SSR limit: under
/// heavy throttling the GPU spends most of its time stalled, and the
/// stall clears once the governor is removed.
#[test]
fn backpressure_stalls_the_gpu() {
    let free = ExperimentBuilder::new(cfg()).gpu_app("ubench").run();
    let throttled = ExperimentBuilder::new(cfg())
        .gpu_app("ubench")
        .qos(QosParams::threshold_percent(1.0))
        .run();
    assert!(throttled.kernel.qos_deferrals > 100);
    assert!(throttled.gpu_throughput < free.gpu_throughput * 0.5);
    // Deferral shows up as SSR latency, not as extra CPU burn.
    assert!(throttled.kernel.mean_ssr_latency > free.kernel.mean_ssr_latency * 2);
    assert!(throttled.cpu_ssr_overhead < free.cpu_ssr_overhead);
}

/// QoS composes with every §V mitigation (they are orthogonal — paper
/// §VI: "it is also orthogonal to (and can run in conjunction with) the
/// techniques of Section V").
#[test]
fn qos_composes_with_mitigations() {
    for m in Mitigation::all_combinations() {
        let r = ExperimentBuilder::new(cfg())
            .cpu_app("vips")
            .gpu_app("ubench")
            .mitigation(m)
            .qos(QosParams::threshold_percent(2.0))
            .run();
        assert!(
            r.cpu_app_runtime.is_some(),
            "{}: run did not finish",
            m.label()
        );
        assert!(
            r.cpu_ssr_overhead < 0.06,
            "{}: overhead {} not capped",
            m.label(),
            r.cpu_ssr_overhead
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any threshold and workload pairing, the governor caps overhead
    /// near the ceiling and the run terminates.
    #[test]
    fn threshold_is_honoured_everywhere(
        pct in 1.0f64..30.0,
        cpu_idx in 0usize..13,
        seed in 0u64..100,
    ) {
        let cpu = hiss::parsec_suite()[cpu_idx].name;
        let r = ExperimentBuilder::new(cfg())
            .cpu_app(cpu)
            .gpu_app("ubench")
            .qos(QosParams::threshold_percent(pct))
            .seed(seed)
            .run();
        prop_assert!(r.cpu_app_runtime.is_some());
        let ceiling = pct / 100.0;
        prop_assert!(
            r.cpu_ssr_overhead <= ceiling * 1.6 + 0.01,
            "{cpu} th_{pct}: overhead {} vs ceiling {ceiling}",
            r.cpu_ssr_overhead
        );
    }

    /// With QoS the CPU application is never *slower* than without it,
    /// for heavily-interfering workloads.
    #[test]
    fn qos_never_hurts_the_victim(pct in 1.0f64..10.0, seed in 0u64..50) {
        let base = ExperimentBuilder::new(cfg())
            .cpu_app("fluidanimate")
            .gpu_app("ubench")
            .seed(seed)
            .run();
        let throttled = ExperimentBuilder::new(cfg())
            .cpu_app("fluidanimate")
            .gpu_app("ubench")
            .qos(QosParams::threshold_percent(pct))
            .seed(seed)
            .run();
        let a = throttled.cpu_app_runtime.unwrap().as_nanos() as f64;
        let b = base.cpu_app_runtime.unwrap().as_nanos() as f64;
        prop_assert!(a <= b * 1.02, "QoS made the victim slower: {a} vs {b}");
    }
}
