//! Lint regression harness.
//!
//! Two directions, both pinned:
//!
//! - every fixture in `tests/lint_fixtures/` is a minimal `.hiss` file
//!   (or source tree) broken in exactly one way; its diagnostics must
//!   match the committed `.expect` golden byte-for-byte, keeping the
//!   HLxxx codes, positions, and wording stable,
//! - the committed tree itself — `scenarios/*.hiss`, `crates/*/src`
//!   under the `lint.toml` allowlist, and `docs/OBSERVABILITY.md` —
//!   must lint clean.
//!
//! The CLI end-to-end tests drive the same checks through
//! `hiss-cli lint` and pin its exit statuses, which is what CI gates on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_dir() -> PathBuf {
    repo_root().join("tests/lint_fixtures")
}

/// The `.hiss` fixtures, sorted by name for deterministic test order.
fn fixtures() -> Vec<PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(fixture_dir())
        .expect("tests/lint_fixtures exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "hiss"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no fixtures found");
    out
}

/// `hl007_duplicate_value.hiss` → `HL007`.
fn expected_code(path: &Path) -> String {
    let stem = path.file_stem().unwrap().to_str().unwrap();
    stem[..5].to_uppercase()
}

#[test]
fn fixtures_match_their_goldens() {
    for path in fixtures() {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let diags = hiss_scenario::lint::lint_text(name, &text);
        assert!(!diags.is_empty(), "{name}: expected at least one finding");

        let code = expected_code(&path);
        assert!(
            diags.iter().any(|d| d.code.as_str() == code),
            "{name}: no {code} among {diags:?}"
        );

        let rendered: String = diags.iter().map(|d| format!("{d}\n")).collect();
        let golden = std::fs::read_to_string(path.with_extension("expect"))
            .unwrap_or_else(|e| panic!("{name}: missing golden: {e}"));
        assert_eq!(rendered, golden, "{name}: diagnostics drifted from golden");
    }
}

#[test]
fn every_scenario_code_has_a_fixture() {
    let covered: Vec<String> = fixtures().iter().map(|p| expected_code(p)).collect();
    for code in hiss_lint::Code::ALL {
        let code = code.as_str();
        // HL2xx/HL3xx are exercised by the source-tree fixture below
        // and HL402..HL405 by the snapshots/ fixtures and coverage
        // unit tests — none of those has a single-`.hiss` trigger
        // (HL201 is a pure drift guard with none at all). HL401 does
        // (`[expect]` bands contradicting a conservation law), so it
        // is held to a fixture like the HL0xx grammar codes.
        if code >= "HL2" && code != "HL401" {
            continue;
        }
        assert!(
            covered.contains(&code.to_string()),
            "no fixture covers {code}"
        );
    }
}

/// The snapshot fixtures: doctored baseline/snapshot JSON inputs for
/// the codes that lint *metric files* rather than `.hiss` text, each
/// pinned to a byte-exact golden like the `.hiss` fixtures above.
#[test]
fn snapshot_fixtures_match_their_goldens() {
    let dir = fixture_dir().join("snapshots");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/lint_fixtures/snapshots exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x != "expect"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no snapshot fixtures found");
    for path in paths {
        let name = path.file_name().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let code = expected_code(&path);
        let diags = match code.as_str() {
            "HL203" => hiss_lint::baseline::check_baseline(name, &text),
            "HL402" => hiss_lint::invariants::check_baseline_invariants(name, &text),
            "HL403" => hiss_lint::invariants::check_snapshot_invariants(name, &text),
            other => panic!("{name}: no checker mapped for {other}"),
        };
        assert!(
            diags.iter().any(|d| d.code.as_str() == code),
            "{name}: no {code} among {diags:?}"
        );
        let rendered: String = diags.iter().map(|d| format!("{d}\n")).collect();
        let golden = std::fs::read_to_string(path.with_extension("expect"))
            .unwrap_or_else(|e| panic!("{name}: missing golden: {e}"));
        assert_eq!(rendered, golden, "{name}: diagnostics drifted from golden");
    }
}

/// Every code catalogued in docs/LINTS.md is pinned somewhere: by a
/// fixture whose stem names it (`hl402_*` → HL402, in either fixture
/// directory) or by one of the named tests listed here. Adding a code
/// to the docs without a pin fails this test.
#[test]
fn every_documented_code_is_pinned_by_a_fixture_or_named_test() {
    let named: &[(&str, &str)] = &[
        (
            "HL201",
            "hiss-scenario lint::tests::expect_metrics_resolve_in_the_obs_schema",
        ),
        ("HL202", "cli_flags_every_code_in_the_broken_source_tree"),
        ("HL301", "cli_flags_every_code_in_the_broken_source_tree"),
        ("HL302", "cli_flags_every_code_in_the_broken_source_tree"),
        ("HL303", "cli_flags_every_code_in_the_broken_source_tree"),
        ("HL304", "cli_flags_every_code_in_the_broken_source_tree"),
        ("HL305", "cli_flags_every_code_in_the_broken_source_tree"),
        (
            "HL404",
            "hiss-scenario lint::tests::coverage_flags_dead_knobs_and_dead_metrics",
        ),
        (
            "HL405",
            "hiss-scenario lint::tests::coverage_flags_dead_knobs_and_dead_metrics",
        ),
    ];
    let mut pinned: Vec<String> = Vec::new();
    for dir in [fixture_dir(), fixture_dir().join("snapshots")] {
        for entry in std::fs::read_dir(dir).unwrap().filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_file() && !path.extension().is_some_and(|x| x == "expect") {
                pinned.push(expected_code(&path));
            }
        }
    }
    let text = std::fs::read_to_string(repo_root().join("docs/LINTS.md")).unwrap();
    for code in text
        .lines()
        .filter_map(|l| l.strip_prefix("### "))
        .filter_map(|h| h.split_whitespace().next())
    {
        assert!(
            pinned.contains(&code.to_string()) || named.iter().any(|(c, _)| *c == code),
            "{code} is documented but pinned by no fixture or named test"
        );
    }
}

#[test]
fn docs_lints_md_catalogues_every_code() {
    let text = std::fs::read_to_string(repo_root().join("docs/LINTS.md")).unwrap();
    let documented: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("### "))
        .filter_map(|h| h.split_whitespace().next())
        .collect();
    let expected: Vec<&str> = hiss_lint::Code::ALL.iter().map(|c| c.as_str()).collect();
    assert_eq!(
        documented, expected,
        "docs/LINTS.md section headings disagree with hiss_lint::Code::ALL"
    );
}

#[test]
fn committed_scenarios_lint_clean() {
    let dir = repo_root().join("scenarios");
    let files = hiss_scenario::list_files(&dir).unwrap();
    assert!(!files.is_empty(), "no committed scenarios found");
    for path in files {
        let diags = hiss_scenario::lint::lint_file(&path);
        assert!(diags.is_empty(), "{}: {diags:?}", path.display());
    }
}

#[test]
fn workspace_sources_lint_clean_with_committed_allowlist() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let config = hiss_lint::config::parse(&text).unwrap();
    let diags = hiss_lint::sources::scan(&root, &config).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn observability_doc_names_resolve_in_schema() {
    let text = std::fs::read_to_string(repo_root().join("docs/OBSERVABILITY.md")).unwrap();
    let diags = hiss_lint::docs::check_doc("docs/OBSERVABILITY.md", &text);
    assert!(diags.is_empty(), "{diags:?}");
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hiss-cli"));
    cmd.current_dir(repo_root());
    cmd
}

#[test]
fn cli_exits_nonzero_on_every_fixture_with_its_code() {
    for path in fixtures() {
        let out = cli()
            .args(["lint", path.to_str().unwrap()])
            .output()
            .unwrap();
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(
            !out.status.success(),
            "{}: lint unexpectedly passed:\n{stdout}",
            path.display()
        );
        let code = expected_code(&path);
        assert!(
            stdout.contains(&format!("[{code}]")),
            "{}: {code} not in output:\n{stdout}",
            path.display()
        );
    }
}

#[test]
fn cli_flags_every_code_in_the_broken_source_tree() {
    let out = cli()
        .args([
            "lint",
            "--sources",
            "--docs",
            "--root",
            "tests/lint_fixtures/source_tree",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "expected findings:\n{stdout}");
    for code in ["HL301", "HL302", "HL303", "HL304", "HL305", "HL202"] {
        assert!(
            stdout.contains(&format!("[{code}]")),
            "{code} not in output:\n{stdout}"
        );
    }
}

#[test]
fn cli_lint_invariants_flags_the_doctored_tree() {
    let out = cli()
        .args([
            "lint",
            "--invariants",
            "--root",
            "tests/lint_fixtures/invariants_tree",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(!out.status.success(), "expected findings:\n{stdout}");
    for code in ["HL402", "HL404", "HL405"] {
        assert!(
            stdout.contains(&format!("[{code}]")),
            "{code} not in output:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("BENCH_BASELINE.json:2:"),
        "HL402 must carry file:line:\n{stdout}"
    );
}

#[test]
fn cli_report_sanitize_flags_the_doctored_snapshot() {
    let out = cli()
        .args([
            "report",
            "tests/lint_fixtures/snapshots/hl403_snapshot_violation.jsonl",
            "--sanitize",
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        !out.status.success(),
        "sanitize unexpectedly passed:\n{stderr}"
    );
    assert!(stderr.contains("[HL403]"), "{stderr}");
    assert!(
        stderr.contains("hl403_snapshot_violation.jsonl:2:"),
        "violation must carry file:line:\n{stderr}"
    );
}

/// `lint --all` is what CI's static-analysis job runs: the whole
/// committed tree — scenarios, sources, docs, baseline schema, and
/// the conservation-law/coverage passes — must be clean.
#[test]
fn cli_exits_zero_on_the_committed_tree() {
    let out = cli().args(["lint", "--all"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "committed tree has findings:\n{stdout}"
    );
    assert!(stdout.contains("lint: clean"), "{stdout}");
}

#[test]
fn cli_rejects_a_lint_invocation_with_nothing_to_do() {
    let out = cli().arg("lint").output().unwrap();
    assert!(!out.status.success());
}
