//! The batch compiler inherits the runner's determinism contract:
//! scenario results must be bit-identical whatever `HISS_THREADS` says,
//! and whatever the baseline-cache state.

use hiss::experiments::BaselineCache;
use hiss_scenario::{run, Row, Scenario};

/// A scenario exercising every compiler feature that could plausibly
/// interact with scheduling: a mitigation sweep (uncached treated
/// runs), replicas, and the shared baseline cache.
const SCENARIO: &str = r#"
[scenario]
name = "determinism-probe"
[workload]
cpu = ["x264", "raytrace"]
gpu = ["sssp", "ubench"]
[run]
replicas = 2
[sweep]
mitigation = ["default", "steer+coalesce"]
"#;

fn bits(rows: &[Row]) -> Vec<(String, String, u32, Option<u64>, u64, u64)> {
    rows.iter()
        .map(|r| {
            (
                r.cpu_app.clone(),
                r.gpu_app.clone(),
                r.replica,
                r.cpu_perf.map(f64::to_bits),
                r.gpu_perf.to_bits(),
                r.ssrs_serviced,
            )
        })
        .collect()
}

/// One test owns `HISS_THREADS` end to end (tests in a binary share the
/// process environment, so the mutation must not span `#[test]`s).
#[test]
fn scenario_batches_are_bit_identical_across_worker_counts() {
    let sc = Scenario::from_str(SCENARIO).unwrap();

    std::env::set_var("HISS_THREADS", "1");
    BaselineCache::global().clear();
    let serial = run(&sc, false);

    std::env::set_var("HISS_THREADS", "8");
    BaselineCache::global().clear();
    let parallel = run(&sc, false);

    // Warm cache: memoized baselines must not change any value.
    let warm = run(&sc, false);
    std::env::remove_var("HISS_THREADS");

    // 2 sweep points × 2 gpu × 2 cpu × 2 replicas.
    assert_eq!(serial.len(), 16);
    assert_eq!(bits(&serial), bits(&parallel));
    assert_eq!(bits(&serial), bits(&warm));
}
