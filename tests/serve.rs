//! End-to-end tests for the serving subsystem (`docs/SERVE.md`), in the
//! style of `tests/bench.rs`: real `hiss-cli serve` processes, real TCP
//! submissions, and the committed `scenarios/fig3.hiss`.
//!
//! The acceptance pin: a second identical submission performs **zero**
//! simulations (every cell comes from the disk store) and streams
//! `cell.*` snapshot lines byte-identical both to the first submission
//! and to a direct `hiss-cli scenario run --metrics` file — under
//! `HISS_THREADS=1` and `HISS_THREADS=8` alike.
//!
//! Corruption handling is fixture-driven (`tests/store_fixtures/`),
//! mirroring `tests/lint_fixtures/`: each corrupt entry shape must be
//! detected, counted under `bench.serve.store_invalid`, recomputed, and
//! healed in place.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use hiss::DiskStore;
use hiss_serve::{cell_store_key, Service};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hiss-cli"));
    cmd.current_dir(repo_root());
    cmd
}

/// A `hiss-cli serve` child bound to an OS-assigned port, parsed from
/// its first stdout line.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(store: &Path, threads: &str) -> ServerProc {
        let mut child = cli()
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store",
                store.to_str().unwrap(),
                "--threads",
                threads,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap();
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .split("listening on ")
            .nth(1)
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .split(',')
            .next()
            .unwrap()
            .trim()
            .to_string();
        ServerProc { child, addr }
    }

    /// Asks the server to shut down and waits for a clean exit.
    fn shutdown(mut self) {
        let out = cli()
            .args(["submit", "--shutdown", "--addr", &self.addr])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "shutdown failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exited with {status}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parses the client's stderr summary: `submit: cells=N simulated=N
/// from_store=N`.
fn summary(stderr: &str) -> (u64, u64, u64) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("submit: "))
        .unwrap_or_else(|| panic!("no submit summary in:\n{stderr}"));
    let field = |key: &str| -> u64 {
        line.split(&format!("{key}="))
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
    };
    (field("cells"), field("simulated"), field("from_store"))
}

fn submit_fig3(addr: &str, out: &Path) -> (u64, u64, u64) {
    let run = cli()
        .args([
            "submit",
            "scenarios/fig3.hiss",
            "--quick",
            "--addr",
            addr,
            "--metrics",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(run.stderr).unwrap();
    assert!(run.status.success(), "submit failed:\n{stderr}");
    summary(&stderr)
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                out.extend(walk(&p));
            } else {
                out.push(p);
            }
        }
    }
    out
}

/// The full acceptance loop for one server worker count.
fn resubmission_is_pure_store_hits(threads: &str) {
    let store = tmp(&format!("serve_store_t{threads}"));
    let _ = std::fs::remove_dir_all(&store);
    let server = ServerProc::start(&store, threads);

    // Ground truth: the same grid run directly, metrics to a file.
    let direct = tmp(&format!("serve_direct_t{threads}.jsonl"));
    let out = cli()
        .args([
            "scenario",
            "run",
            "scenarios/fig3.hiss",
            "--quick",
            "--no-check",
            "--metrics",
            direct.to_str().unwrap(),
        ])
        .env("HISS_THREADS", threads)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "scenario run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // First submission: a wiped store simulates everything.
    let served1 = tmp(&format!("serve_first_t{threads}.jsonl"));
    let (cells, simulated, from_store) = submit_fig3(&server.addr, &served1);
    assert!(cells > 0);
    assert_eq!((simulated, from_store), (cells, 0), "first pass");

    // Streamed snapshots are byte-identical to the direct run's file.
    let direct_text = std::fs::read_to_string(&direct).unwrap();
    let served_text = std::fs::read_to_string(&served1).unwrap();
    assert_eq!(
        served_text, direct_text,
        "served stream diverges from `scenario run --metrics` (HISS_THREADS={threads})"
    );

    // Second identical submission: zero simulations, byte-identical.
    let served2 = tmp(&format!("serve_second_t{threads}.jsonl"));
    let (cells2, simulated2, from_store2) = submit_fig3(&server.addr, &served2);
    assert_eq!(
        (cells2, simulated2, from_store2),
        (cells, 0, cells),
        "re-submission must be 100% store hits"
    );
    assert_eq!(
        std::fs::read_to_string(&served2).unwrap(),
        served_text,
        "re-served stream diverges (HISS_THREADS={threads})"
    );

    // Graceful shutdown drains and leaves no write temporaries.
    server.shutdown();
    let torn: Vec<_> = walk(&store)
        .into_iter()
        .filter(|p| p.to_string_lossy().contains(".tmp."))
        .collect();
    assert!(
        torn.is_empty(),
        "torn temporaries survive shutdown: {torn:?}"
    );

    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn resubmission_is_pure_store_hits_serial() {
    resubmission_is_pure_store_hits("1");
}

#[test]
fn resubmission_is_pure_store_hits_parallel() {
    resubmission_is_pure_store_hits("8");
}

const TINY: &str = r#"
[scenario]
name = "tiny"
[workload]
cpu = ["x264"]
gpu = ["ubench"]
"#;

/// Every committed corruption fixture must be detected (not crash, not
/// serve garbage), counted under `bench.serve.store_invalid`, fall back
/// to a fresh simulation, and leave a healed entry behind.
#[test]
fn corrupt_store_entries_are_detected_recomputed_and_healed() {
    let fixtures_dir = repo_root().join("tests/store_fixtures");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&fixtures_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 4,
        "expected the corruption fixture set, found {fixtures:?}"
    );

    let sc = hiss_scenario::Scenario::from_str(TINY).unwrap();
    let cell = hiss_scenario::expand(&sc, false).remove(0);
    let key = cell_store_key(&cell);

    for fixture in &fixtures {
        let name = fixture.file_stem().unwrap().to_string_lossy();
        let dir = tmp(&format!("corrupt_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(DiskStore::open(&dir).unwrap());

        // Plant the corrupt fixture where the cell's entry belongs.
        let entry = store.entry_path(&key);
        std::fs::create_dir_all(entry.parent().unwrap()).unwrap();
        std::fs::copy(fixture, &entry).unwrap();

        let service = Service::new(Some(Arc::clone(&store)));
        let mut streamed = Vec::new();
        let s = service
            .submit("tiny", TINY, false, |m| streamed.push(m.to_json()))
            .unwrap();
        assert_eq!(
            (s.cells, s.simulated, s.from_store),
            (1, 1, 0),
            "{name}: corrupt entry must fall back to recompute"
        );
        assert_eq!(store.invalid_count(), 1, "{name}: not counted invalid");

        let mut reg = hiss::MetricsRegistry::new();
        service.publish(&mut reg, "bench.serve");
        assert_eq!(
            reg.counter_value("bench.serve.store_invalid"),
            Some(1),
            "{name}"
        );

        // The recompute healed the entry: a fresh store loads it clean.
        let reread = DiskStore::open(&dir).unwrap();
        assert!(
            reread.load(&key).is_some(),
            "{name}: entry not healed after recompute"
        );
        assert_eq!(reread.invalid_count(), 0, "{name}: healed entry invalid");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
