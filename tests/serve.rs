//! End-to-end tests for the serving subsystem (`docs/SERVE.md`), in the
//! style of `tests/bench.rs`: real `hiss-cli serve` processes, real TCP
//! submissions, and the committed `scenarios/fig3.hiss`.
//!
//! The acceptance pin: a second identical submission performs **zero**
//! simulations (every cell comes from the disk store) and streams
//! `cell.*` snapshot lines byte-identical both to the first submission
//! and to a direct `hiss-cli scenario run --metrics` file — under
//! `HISS_THREADS=1` and `HISS_THREADS=8` alike.
//!
//! Corruption handling is fixture-driven (`tests/store_fixtures/`),
//! mirroring `tests/lint_fixtures/`: each corrupt entry shape must be
//! detected, counted under `bench.serve.store_invalid`, recomputed, and
//! healed in place.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use hiss::DiskStore;
use hiss_serve::{cell_store_key, Response, Service};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hiss-cli"));
    cmd.current_dir(repo_root());
    cmd
}

/// A `hiss-cli serve` child bound to an OS-assigned port, parsed from
/// its first stdout line.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(store: &Path, threads: &str) -> ServerProc {
        let mut child = cli()
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store",
                store.to_str().unwrap(),
                "--threads",
                threads,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap();
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut line)
            .unwrap();
        let addr = line
            .split("listening on ")
            .nth(1)
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .split(',')
            .next()
            .unwrap()
            .trim()
            .to_string();
        ServerProc { child, addr }
    }

    /// Asks the server to shut down and waits for a clean exit.
    fn shutdown(mut self) {
        let out = cli()
            .args(["submit", "--shutdown", "--addr", &self.addr])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "shutdown failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exited with {status}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Parses the client's stderr summary: `submit: cells=N simulated=N
/// from_store=N`.
fn summary(stderr: &str) -> (u64, u64, u64) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("submit: "))
        .unwrap_or_else(|| panic!("no submit summary in:\n{stderr}"));
    let field = |key: &str| -> u64 {
        line.split(&format!("{key}="))
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
    };
    (field("cells"), field("simulated"), field("from_store"))
}

fn submit_fig3(addr: &str, out: &Path) -> (u64, u64, u64) {
    let run = cli()
        .args([
            "submit",
            "scenarios/fig3.hiss",
            "--quick",
            "--addr",
            addr,
            "--metrics",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(run.stderr).unwrap();
    assert!(run.status.success(), "submit failed:\n{stderr}");
    summary(&stderr)
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                out.extend(walk(&p));
            } else {
                out.push(p);
            }
        }
    }
    out
}

/// The full acceptance loop for one server worker count.
fn resubmission_is_pure_store_hits(threads: &str) {
    let store = tmp(&format!("serve_store_t{threads}"));
    let _ = std::fs::remove_dir_all(&store);
    let server = ServerProc::start(&store, threads);

    // Ground truth: the same grid run directly, metrics to a file.
    let direct = tmp(&format!("serve_direct_t{threads}.jsonl"));
    let out = cli()
        .args([
            "scenario",
            "run",
            "scenarios/fig3.hiss",
            "--quick",
            "--no-check",
            "--metrics",
            direct.to_str().unwrap(),
        ])
        .env("HISS_THREADS", threads)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "scenario run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // First submission: a wiped store simulates everything.
    let served1 = tmp(&format!("serve_first_t{threads}.jsonl"));
    let (cells, simulated, from_store) = submit_fig3(&server.addr, &served1);
    assert!(cells > 0);
    assert_eq!((simulated, from_store), (cells, 0), "first pass");

    // Streamed snapshots are byte-identical to the direct run's file.
    let direct_text = std::fs::read_to_string(&direct).unwrap();
    let served_text = std::fs::read_to_string(&served1).unwrap();
    assert_eq!(
        served_text, direct_text,
        "served stream diverges from `scenario run --metrics` (HISS_THREADS={threads})"
    );

    // Second identical submission: zero simulations, byte-identical.
    let served2 = tmp(&format!("serve_second_t{threads}.jsonl"));
    let (cells2, simulated2, from_store2) = submit_fig3(&server.addr, &served2);
    assert_eq!(
        (cells2, simulated2, from_store2),
        (cells, 0, cells),
        "re-submission must be 100% store hits"
    );
    assert_eq!(
        std::fs::read_to_string(&served2).unwrap(),
        served_text,
        "re-served stream diverges (HISS_THREADS={threads})"
    );

    // Graceful shutdown drains and leaves no write temporaries.
    server.shutdown();
    let torn: Vec<_> = walk(&store)
        .into_iter()
        .filter(|p| p.to_string_lossy().contains(".tmp."))
        .collect();
    assert!(
        torn.is_empty(),
        "torn temporaries survive shutdown: {torn:?}"
    );

    std::fs::remove_dir_all(&store).unwrap();
}

#[test]
fn resubmission_is_pure_store_hits_serial() {
    resubmission_is_pure_store_hits("1");
}

#[test]
fn resubmission_is_pure_store_hits_parallel() {
    resubmission_is_pure_store_hits("8");
}

const TINY: &str = r#"
[scenario]
name = "tiny"
[workload]
cpu = ["x264"]
gpu = ["ubench"]
"#;

/// A fake server: accepts one connection, reads the request line, plays
/// back the given response lines verbatim, and closes the socket —
/// the wire behaviour of a server killed (or cut by a proxy) mid-stream.
///
/// Same sanction as the serve accept loop (see lint.toml): a
/// transport-only thread that never touches simulation state.
#[allow(clippy::disallowed_methods)]
fn fake_server(lines: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        use std::io::Write;
        let (conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut req = String::new();
        reader.read_line(&mut req).unwrap();
        let mut writer = conn;
        for line in &lines {
            writeln!(writer, "{line}").unwrap();
        }
        writer.flush().unwrap();
    });
    (addr, handle)
}

/// One plausible-looking cell snapshot line (no `resp.*` framing).
fn cell_line() -> String {
    let mut m = hiss::MetricsRegistry::new();
    m.label("cell.cpu_app", "x264");
    m.counter("kernel.ipis", 9);
    Response::Cell(m).encode()
}

/// A `done` tail claiming more cells than were streamed must be a hard
/// protocol error, not a successful short run: a server restarted
/// mid-grid (or a replayed stale tail) silently losing cells is exactly
/// the failure a batch pipeline cannot be allowed to absorb.
#[test]
fn done_tail_undercounting_the_stream_is_a_protocol_error() {
    let done = Response::Done {
        cells: 3,
        simulated: 3,
        from_store: 0,
    };
    let (addr, handle) = fake_server(vec![cell_line(), done.encode()]);
    let err = hiss_serve::submit(&addr, TINY, false).unwrap_err();
    handle.join().unwrap();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") && msg.contains("3 cells") && msg.contains("1 snapshot"),
        "unhelpful truncation error: {msg}"
    );
}

/// A connection that closes with no tail at all (killed server) is an
/// error too — never a zero-cell success.
#[test]
fn eof_mid_stream_is_an_error_not_a_short_run() {
    let (addr, handle) = fake_server(vec![cell_line()]);
    let err = hiss_serve::submit(&addr, TINY, false).unwrap_err();
    handle.join().unwrap();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

/// The `hiss-cli submit` process must propagate a truncated stream as a
/// nonzero exit with the protocol error on stderr — and write nothing
/// to the `--metrics` file path.
#[test]
fn cli_submit_exits_nonzero_on_a_truncated_stream() {
    let done = Response::Done {
        cells: 2,
        simulated: 2,
        from_store: 0,
    };
    let (addr, handle) = fake_server(vec![cell_line(), done.encode()]);
    let out_path = tmp("truncated_submit.jsonl");
    let _ = std::fs::remove_file(&out_path);
    let out = cli()
        .args([
            "submit",
            "scenarios/fig3.hiss",
            "--addr",
            &addr,
            "--metrics",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    handle.join().unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        !out.status.success(),
        "truncated stream exited zero:\n{stderr}"
    );
    assert!(stderr.contains("truncated"), "stderr: {stderr}");
    assert!(
        !out_path.exists(),
        "a truncated stream must not produce a metrics file"
    );
}

const TINY_TOPOLOGY: &str = r#"
[scenario]
name = "tiny"
[workload]
cpu = ["x264"]
gpu = ["ubench"]
[topology]
devices = ["gpu", "nic"]
steer = [-1, 3]
"#;

/// Store-identity regression: `TINY` and `TINY_TOPOLOGY` resolve to the
/// same `Knobs` (the topology fixes gpus = 1) and the same app names,
/// so before the key incorporated the topology they collided to one
/// cached result — a NIC-laden run served from a NIC-free entry.
#[test]
fn store_keys_differ_for_cells_differing_only_in_topology() {
    let plain = hiss_scenario::Scenario::from_str(TINY).unwrap();
    let topo = hiss_scenario::Scenario::from_str(TINY_TOPOLOGY).unwrap();
    let plain_cell = hiss_scenario::expand(&plain, false).remove(0);
    let topo_cell = hiss_scenario::expand(&topo, false).remove(0);
    assert_eq!(
        format!("{:?}", plain_cell.knobs),
        format!("{:?}", topo_cell.knobs),
        "collision precondition: the knobs alone cannot tell these apart"
    );
    assert_ne!(
        cell_store_key(&plain_cell),
        cell_store_key(&topo_cell),
        "store key must incorporate the [topology]"
    );
}

/// The collision, end to end: warm the store with the plain scenario,
/// then submit the topology variant — it must simulate, not be served
/// the plain scenario's cached result.
#[test]
fn topology_cells_never_hit_a_plain_cells_store_entry() {
    let dir = tmp("topology_key_collision");
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DiskStore::open(&dir).unwrap());
    let service = Service::new(Some(Arc::clone(&store)));

    let mut plain = Vec::new();
    service
        .submit("tiny", TINY, false, |m| plain.push(m.to_json()))
        .unwrap();
    let mut topo = Vec::new();
    let s = service
        .submit("tiny_topology", TINY_TOPOLOGY, false, |m| {
            topo.push(m.to_json())
        })
        .unwrap();
    assert_eq!(
        (s.cells, s.simulated, s.from_store),
        (1, 1, 0),
        "the topology cell must not be served from the plain cell's entry"
    );
    assert!(
        topo[0].contains("run.aux_ssrs_raised") && topo[0].contains("cell.topology"),
        "topology snapshot lacks its device metrics: {}",
        &topo[0]
    );
    assert_ne!(plain, topo);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Every committed corruption fixture must be detected (not crash, not
/// serve garbage), counted under `bench.serve.store_invalid`, fall back
/// to a fresh simulation, and leave a healed entry behind.
#[test]
fn corrupt_store_entries_are_detected_recomputed_and_healed() {
    let fixtures_dir = repo_root().join("tests/store_fixtures");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&fixtures_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 4,
        "expected the corruption fixture set, found {fixtures:?}"
    );

    let sc = hiss_scenario::Scenario::from_str(TINY).unwrap();
    let cell = hiss_scenario::expand(&sc, false).remove(0);
    let key = cell_store_key(&cell);

    for fixture in &fixtures {
        let name = fixture.file_stem().unwrap().to_string_lossy();
        let dir = tmp(&format!("corrupt_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(DiskStore::open(&dir).unwrap());

        // Plant the corrupt fixture where the cell's entry belongs.
        let entry = store.entry_path(&key);
        std::fs::create_dir_all(entry.parent().unwrap()).unwrap();
        std::fs::copy(fixture, &entry).unwrap();

        let service = Service::new(Some(Arc::clone(&store)));
        let mut streamed = Vec::new();
        let s = service
            .submit("tiny", TINY, false, |m| streamed.push(m.to_json()))
            .unwrap();
        assert_eq!(
            (s.cells, s.simulated, s.from_store),
            (1, 1, 0),
            "{name}: corrupt entry must fall back to recompute"
        );
        assert_eq!(store.invalid_count(), 1, "{name}: not counted invalid");

        let mut reg = hiss::MetricsRegistry::new();
        service.publish(&mut reg, "bench.serve");
        assert_eq!(
            reg.counter_value("bench.serve.store_invalid"),
            Some(1),
            "{name}"
        );

        // The recompute healed the entry: a fresh store loads it clean.
        let reread = DiskStore::open(&dir).unwrap();
        assert!(
            reread.load(&key).is_some(),
            "{name}: entry not healed after recompute"
        );
        assert_eq!(reread.invalid_count(), 0, "{name}: healed entry invalid");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
