//! Whole-system integration tests: cross-crate invariants that must hold
//! for *any* configuration — conservation of time and requests,
//! determinism, and graceful behaviour at configuration extremes.

use hiss::{ExperimentBuilder, Mitigation, QosParams, RunReport, SystemConfig, TimeCategory};
use proptest::prelude::*;

fn cfg() -> SystemConfig {
    SystemConfig::a10_7850k()
}

fn all_pairs() -> Vec<(&'static str, &'static str)> {
    let mut v = Vec::new();
    for c in ["swaptions", "streamcluster", "raytrace"] {
        for g in ["bfs", "sssp", "ubench"] {
            v.push((c, g));
        }
    }
    v
}

/// Every core's ledger covers (approximately) the whole run, for every
/// workload pairing and mitigation.
#[test]
fn ledgers_conserve_wall_time_across_grid() {
    for (c, g) in all_pairs() {
        for m in [
            Mitigation::DEFAULT,
            Mitigation {
                steer_single_core: true,
                coalesce: true,
                monolithic_bottom_half: true,
            },
        ] {
            let r = ExperimentBuilder::new(cfg())
                .cpu_app(c)
                .gpu_app(g)
                .mitigation(m)
                .run();
            for (i, b) in r.per_core.iter().enumerate() {
                let ratio = b.total().as_nanos() as f64 / r.elapsed.as_nanos() as f64;
                assert!(
                    (0.95..=1.05).contains(&ratio),
                    "{c}+{g} {m:?}: core {i} ledger covers {ratio:.4} of wall time"
                );
            }
        }
    }
}

/// Every raised SSR is eventually serviced (none lost in the
/// IOMMU→kernel→GPU pipeline) in runs that drain fully.
#[test]
fn no_ssr_is_lost() {
    for (c, g) in all_pairs() {
        let r = ExperimentBuilder::new(cfg()).cpu_app(c).gpu_app(g).run();
        assert!(
            r.kernel.ssrs_serviced > 0,
            "{c}+{g}: no SSRs serviced at all"
        );
        // IOMMU-side conservation: logged = drained + still-pending.
        assert_eq!(
            r.iommu.drained + r.pending_at_end as u64,
            r.iommu.requests,
            "{c}+{g}"
        );
    }
}

/// Identical configuration and seed produce bit-identical reports.
#[test]
fn determinism_across_the_grid() {
    for (c, g) in all_pairs() {
        let run = || {
            ExperimentBuilder::new(cfg())
                .cpu_app(c)
                .gpu_app(g)
                .qos(QosParams::threshold_percent(5.0))
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cpu_app_runtime, b.cpu_app_runtime, "{c}+{g}");
        assert_eq!(a.elapsed, b.elapsed, "{c}+{g}");
        assert_eq!(a.kernel.ssrs_serviced, b.kernel.ssrs_serviced, "{c}+{g}");
        assert_eq!(a.kernel.ipis, b.kernel.ipis, "{c}+{g}");
        assert_eq!(
            a.kernel.interrupts_per_core, b.kernel.interrupts_per_core,
            "{c}+{g}"
        );
    }
}

/// A 1-core system still works (everything lands on core 0).
#[test]
fn single_core_system() {
    let mut c = cfg();
    c.num_cores = 1;
    let r = ExperimentBuilder::new(c).gpu_app("sssp").run();
    assert!(r.kernel.ssrs_serviced > 0);
    assert_eq!(r.kernel.interrupts_per_core.len(), 1);
    assert_eq!(r.kernel.ipis, 0, "one core cannot IPI itself");
}

/// An 8-core system spreads interrupts across all eight.
#[test]
fn eight_core_system() {
    let mut c = cfg();
    c.num_cores = 8;
    let r = ExperimentBuilder::new(c).gpu_app("ubench").run();
    assert_eq!(r.kernel.interrupts_per_core.len(), 8);
    assert!(r.kernel.interrupts_per_core.iter().all(|&n| n > 0));
}

/// GPU-only pinned runs terminate in exactly the kernel's work time.
#[test]
fn pinned_gpu_run_is_exact() {
    let spec = hiss::GpuAppSpec::by_name("xsbench").unwrap();
    let r = ExperimentBuilder::new(cfg())
        .gpu_app_pinned("xsbench")
        .run();
    assert_eq!(r.elapsed, spec.total_work);
    assert_eq!(r.gpu_progress, spec.total_work);
    assert!((r.gpu_throughput - 1.0).abs() < 1e-9);
}

/// The energy model orders configurations sensibly: a run that sleeps
/// more draws less average power.
#[test]
fn energy_tracks_sleep() {
    let quiet = ExperimentBuilder::new(cfg()).gpu_app_pinned("ubench").run();
    let noisy = ExperimentBuilder::new(cfg()).gpu_app("ubench").run();
    assert!(
        quiet.energy.cpu_avg_watts < noisy.energy.cpu_avg_watts,
        "sleepy run should draw less power: {} vs {}",
        quiet.energy.cpu_avg_watts,
        noisy.energy.cpu_avg_watts
    );
}

/// The per-core breakdown's SSR overhead matches the report's aggregate.
#[test]
fn overhead_aggrees_with_breakdowns() {
    let r = ExperimentBuilder::new(cfg())
        .cpu_app("ferret")
        .gpu_app("ubench")
        .run();
    let mut whole = hiss::TimeBreakdown::new();
    for b in &r.per_core {
        whole.merge(b);
    }
    assert!((whole.ssr_overhead_fraction() - r.cpu_ssr_overhead).abs() < 1e-9);
    // And some of each overhead category exists under the default config.
    for cat in [
        TimeCategory::TopHalf,
        TimeCategory::Ipi,
        TimeCategory::BottomHalf,
        TimeCategory::Worker,
        TimeCategory::ModeSwitch,
    ] {
        assert!(whole.get(cat) > hiss::Ns::ZERO, "missing {cat:?} time");
    }
}

fn report_fingerprint(r: &RunReport) -> (u64, u64, Option<hiss::Ns>) {
    (r.kernel.ssrs_serviced, r.kernel.ipis, r.cpu_app_runtime)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mitigation combination, QoS setting, and seed yields a run
    /// that terminates, conserves requests, and keeps ledgers consistent.
    #[test]
    fn arbitrary_configs_are_well_formed(
        bits in 0u8..8,
        qos_pct in proptest::option::of(1.0f64..40.0),
        seed in 0u64..1000,
        cpu_idx in 0usize..13,
        gpu_idx in 0usize..6,
    ) {
        let m = Mitigation {
            steer_single_core: bits & 1 != 0,
            coalesce: bits & 2 != 0,
            monolithic_bottom_half: bits & 4 != 0,
        };
        let cpu = hiss::parsec_suite()[cpu_idx].name;
        let gpu = hiss::gpu_suite()[gpu_idx].name;
        let mut b = ExperimentBuilder::new(cfg())
            .cpu_app(cpu)
            .gpu_app(gpu)
            .mitigation(m)
            .seed(seed);
        if let Some(pct) = qos_pct {
            b = b.qos(QosParams::threshold_percent(pct));
        }
        let r = b.run();
        prop_assert!(r.cpu_app_runtime.is_some(), "{cpu}+{gpu} did not finish");
        prop_assert_eq!(r.iommu.drained + r.pending_at_end as u64, r.iommu.requests);
        prop_assert!(r.cpu_ssr_overhead >= 0.0 && r.cpu_ssr_overhead <= 1.0);
        prop_assert!(r.cc6_residency >= 0.0 && r.cc6_residency <= 1.0);
        for b in &r.per_core {
            let ratio = b.total().as_nanos() as f64 / r.elapsed.as_nanos() as f64;
            prop_assert!((0.9..=1.1).contains(&ratio), "ledger ratio {ratio}");
        }
        // Determinism double-check on one random config.
        if seed % 5 == 0 {
            let mut b2 = ExperimentBuilder::new(cfg())
                .cpu_app(cpu)
                .gpu_app(gpu)
                .mitigation(m)
                .seed(seed);
            if let Some(pct) = qos_pct {
                b2 = b2.qos(QosParams::threshold_percent(pct));
            }
            let r2 = b2.run();
            prop_assert_eq!(report_fingerprint(&r), report_fingerprint(&r2));
        }
    }
}
