//! The mixed-criticality protection story, run as a counterfactual:
//! `scenarios/mixed_criticality.hiss` pins that core reservation keeps
//! the critical application at >= 98% of baseline under the worst-case
//! aggressor (the golden harness in `scenarios.rs` enforces the
//! committed bands). This test flips `reserve = false` on the loaded
//! scenario and demonstrates the same bands are then *violated* — the
//! gate is load-bearing, not vacuously wide.

use std::path::{Path, PathBuf};

use hiss_scenario::{check, load, run};

fn scenario_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/mixed_criticality.hiss")
}

#[test]
fn critical_bound_is_violated_without_core_reservation() {
    let mut sc = load(&scenario_path()).expect("committed scenario loads");
    let crit = sc
        .base
        .criticality
        .as_mut()
        .expect("mixed_criticality.hiss declares a [criticality] section");
    assert!(crit.reserve, "the committed scenario reserves cores");
    crit.reserve = false;

    let rows = run(&sc, true);
    let protected = rows
        .iter()
        .find(|r| r.cpu_app == "raytrace")
        .expect("critical app row");
    let cpu_perf = protected.cpu_perf.expect("raytrace finishes");
    assert!(
        cpu_perf < 0.98,
        "without reservation the aggressor must push the critical app \
         below the committed bound, got {cpu_perf}"
    );

    let violations = check(&sc, &rows);
    assert!(
        violations.iter().any(|v| v.msg.contains("max_cpu_perf")),
        "dropping reservation must trip the max_cpu_perf band: {violations:?}"
    );
}

/// The partition's other half: with reservation off, the per-class
/// split still adds up (the guarded conservation laws hold) and the
/// critical class still exists — reservation changes *where* interrupts
/// land, not the class accounting.
#[test]
fn class_accounting_survives_reservation_toggle() {
    let mut sc = load(&scenario_path()).expect("committed scenario loads");
    sc.base.criticality.as_mut().unwrap().reserve = false;
    let pairs = hiss_scenario::run_with_metrics(&sc, true);
    let (_, m) = pairs
        .iter()
        .find(|(r, _)| r.cpu_app == "raytrace")
        .expect("critical app cell");
    assert_eq!(m.counter_value("qos.classes"), Some(2));
    let class = |c: usize, stem: &str| m.counter_value(&format!("qos.class{c}.{stem}")).unwrap();
    assert!(class(0, "requests") > 0, "NIC requests are critical-class");
    assert!(class(1, "requests") > 0, "aggressor is best-effort");
    assert_eq!(
        class(0, "requests") + class(1, "requests"),
        m.counter_value("iommu.requests").unwrap(),
        "per-class split must conserve the total"
    );
}
