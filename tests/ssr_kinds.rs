//! End-to-end tests over the full Table I service catalogue: every SSR
//! kind flows through the whole pipeline, and its system-level impact
//! tracks the paper's qualitative complexity ordering.

use hiss::{ExperimentBuilder, GpuAppSpec, Ns, SsrKind, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::a10_7850k()
}

fn run_kind(kind: SsrKind) -> hiss::RunReport {
    let spec = GpuAppSpec::by_name("spmv").unwrap().with_kind(kind);
    let mut b = ExperimentBuilder::new(cfg());
    b = b.gpu_spec(spec);
    b.run()
}

/// Every kind completes all of its SSRs through the full chain.
#[test]
fn every_kind_flows_end_to_end() {
    for kind in SsrKind::ALL {
        let r = run_kind(kind);
        assert!(
            r.kernel.ssrs_serviced > 50,
            "{kind:?}: {}",
            r.kernel.ssrs_serviced
        );
        assert_eq!(
            r.iommu.drained + r.pending_at_end as u64,
            r.iommu.requests,
            "{kind:?} lost requests"
        );
        assert!(r.gpu_iterations >= 1, "{kind:?} kernel never finished");
    }
}

/// End-to-end latency tracks the Table I complexity ordering: signals are
/// the fastest service, hard page faults the slowest.
#[test]
fn latency_tracks_table1_complexity() {
    let lat = |k: SsrKind| run_kind(k).kernel.mean_ssr_latency;
    let signal = lat(SsrKind::Signal);
    let soft = lat(SsrKind::SoftPageFault);
    let migration = lat(SsrKind::PageMigration);
    let fs = lat(SsrKind::FileSystem);
    let hard = lat(SsrKind::HardPageFault);
    assert!(signal < soft, "signal {signal} vs soft {soft}");
    assert!(soft < migration, "soft {soft} vs migration {migration}");
    assert!(migration < fs, "migration {migration} vs fs {fs}");
    assert!(fs < hard, "fs {fs} vs hard {hard}");
}

/// Costlier services steal more CPU time at the same request rate.
#[test]
fn cpu_overhead_tracks_complexity() {
    let overhead = |k: SsrKind| {
        let spec = GpuAppSpec::by_name("spmv").unwrap().with_kind(k);
        ExperimentBuilder::new(cfg())
            .cpu_app("swaptions")
            .gpu_spec(spec)
            .run()
            .cpu_ssr_overhead
    };
    let signal = overhead(SsrKind::Signal);
    let hard = overhead(SsrKind::HardPageFault);
    assert!(
        hard > signal * 1.5,
        "hard faults ({hard}) should cost notably more than signals ({signal})"
    );
}

/// Expensive services also slow the GPU more (its blocking faults wait
/// longer), and the QoS governor still bounds them.
#[test]
fn qos_covers_expensive_services() {
    let spec = GpuAppSpec::by_name("sssp")
        .unwrap()
        .with_kind(SsrKind::HardPageFault);
    let r = ExperimentBuilder::new(cfg())
        .cpu_app("swaptions")
        .gpu_spec(spec)
        .qos(hiss::QosParams::threshold_percent(2.0))
        .run();
    assert!(r.cpu_app_runtime.is_some());
    assert!(
        r.cpu_ssr_overhead < 0.04,
        "governor failed on hard faults: {}",
        r.cpu_ssr_overhead
    );
}

/// The pinned baseline is identical regardless of the configured kind
/// (no SSRs are generated at all).
#[test]
fn pinned_baseline_is_kind_independent() {
    let mut elapsed: Option<Ns> = None;
    for kind in SsrKind::ALL {
        let spec = GpuAppSpec::by_name("spmv")
            .unwrap()
            .with_kind(kind)
            .pinned();
        let r = ExperimentBuilder::new(cfg()).gpu_spec(spec).run();
        assert_eq!(r.kernel.ssrs_serviced, 0);
        match elapsed {
            None => elapsed = Some(r.elapsed),
            Some(e) => assert_eq!(e, r.elapsed, "{kind:?}"),
        }
    }
}
