//! Calibration suite: pins the simulator to the paper's headline numbers.
//!
//! Each test encodes one quantitative claim from the paper as a tolerance
//! band. The simulator is not expected to match absolute numbers from the
//! authors' testbed — the bands check that *who wins, by roughly what
//! factor, and where the crossovers fall* reproduce (see EXPERIMENTS.md
//! for the per-figure comparison and known deviations).

use hiss::experiments::{fig12, fig3, fig4, section4c};
use hiss::{ExperimentBuilder, Mitigation, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::a10_7850k()
}

/// §I / §IV-A: "GPU system service requests can degrade contemporaneous
/// CPU application performance by up to 44%" (x264 under ubench) "and by
/// 28% on average".
#[test]
fn ubench_cpu_degradation_band() {
    let cpu: Vec<&str> = hiss::parsec_suite().iter().map(|s| s.name).collect();
    let rows = fig3::fig3_with(&cfg(), &cpu, &["ubench"]);
    let s = fig3::summarize(&rows);
    assert!(
        (0.50..=0.80).contains(&s.worst_cpu_ubench),
        "worst-case CPU perf under ubench: {} (paper: 0.56)",
        s.worst_cpu_ubench
    );
    assert!(
        (0.65..=0.88).contains(&s.mean_cpu_ubench),
        "mean CPU perf under ubench: {} (paper: 0.72)",
        s.mean_cpu_ubench
    );
    // The worst-affected application is one of the µarch-sensitive ones.
    let worst = rows
        .iter()
        .min_by(|a, b| a.cpu_perf.total_cmp(&b.cpu_perf))
        .unwrap();
    assert!(
        ["x264", "fluidanimate"].contains(&worst.cpu_app.as_str()),
        "unexpected worst app {}",
        worst.cpu_app
    );
    // raytrace (single-threaded) is the least affected (paper §IV-A).
    let best = rows
        .iter()
        .max_by(|a, b| a.cpu_perf.total_cmp(&b.cpu_perf))
        .unwrap();
    assert_eq!(best.cpu_app, "raytrace");
}

/// §IV-A: full-application SSRs cost the CPU up to 31% (fluidanimate with
/// SSSP), 12% on average for the worst generator.
#[test]
fn full_app_cpu_degradation_band() {
    let rows = fig3::fig3_with(
        &cfg(),
        &["fluidanimate", "x264", "raytrace", "swaptions"],
        &["sssp", "bpt"],
    );
    for r in &rows {
        // Single-threaded raytrace barely interacts with low-rate
        // generators: its cell can land within noise of 1.0.
        let ceiling = if r.cpu_app == "raytrace" { 1.01 } else { 1.0 };
        assert!(
            r.cpu_perf < ceiling,
            "{}+{}: full apps must still interfere ({})",
            r.cpu_app,
            r.gpu_app,
            r.cpu_perf
        );
        assert!(
            r.cpu_perf > 0.6,
            "{}+{}: implausibly strong interference ({})",
            r.cpu_app,
            r.gpu_app,
            r.cpu_perf
        );
    }
    // fluidanimate is hit harder than swaptions by the same generator.
    let get = |c: &str, g: &str| {
        rows.iter()
            .find(|r| r.cpu_app == c && r.gpu_app == g)
            .unwrap()
            .cpu_perf
    };
    assert!(get("fluidanimate", "sssp") < get("swaptions", "sssp"));
}

/// §IV-A / Fig. 3b: unrelated CPU work can delay SSR handling and reduce
/// accelerator throughput by up to 18%; streamcluster is the worst
/// delayer (the paper's average GPU drop for it is 8%).
#[test]
fn busy_cpus_delay_gpu_service() {
    let cpu: Vec<&str> = hiss::parsec_suite().iter().map(|s| s.name).collect();
    let rows = fig3::fig3_with(&cfg(), &cpu, &["sssp", "ubench"]);
    let sssp_stream = rows
        .iter()
        .find(|r| r.cpu_app == "streamcluster" && r.gpu_app == "sssp")
        .unwrap();
    assert!(
        sssp_stream.gpu_perf < 0.95,
        "streamcluster should delay sssp: {}",
        sssp_stream.gpu_perf
    );
    // streamcluster is the worst CPU workload for each GPU app.
    for gpu in ["sssp", "ubench"] {
        let worst = rows
            .iter()
            .filter(|r| r.gpu_app == gpu)
            .min_by(|a, b| a.gpu_perf.total_cmp(&b.gpu_perf))
            .unwrap();
        assert_eq!(
            worst.cpu_app, "streamcluster",
            "worst delayer for {gpu} was {}",
            worst.cpu_app
        );
    }
}

/// §IV-B / Fig. 4: ubench SSRs collapse CC6 residency from 86% to 12%;
/// bfs (clustered early) loses far less than the streaming apps.
#[test]
fn cc6_residency_collapse() {
    let rows = fig4::fig4_with(&cfg(), &["bfs", "sssp", "ubench"]);
    let get = |n: &str| rows.iter().find(|r| r.gpu_app == n).unwrap();
    let ubench = get("ubench");
    assert!(
        ubench.cc6_no_ssr > 0.75,
        "no-SSR residency {} (paper: 0.86)",
        ubench.cc6_no_ssr
    );
    assert!(
        ubench.cc6_ssr < 0.30,
        "ubench SSR residency {} (paper: 0.12)",
        ubench.cc6_ssr
    );
    assert!(
        get("bfs").lost_points() < get("sssp").lost_points(),
        "bfs ({}) should lose fewer points than sssp ({})",
        get("bfs").lost_points(),
        get("sssp").lost_points()
    );
}

/// §IV-C: SSR interrupts are evenly spread across all CPUs; IPIs inflate
/// by orders of magnitude; coalescing cuts interrupts (paper: 16%
/// average).
#[test]
fn section4c_interrupt_analysis() {
    let s = section4c::section4c(&cfg());
    assert!(
        s.interrupt_imbalance < 1.2,
        "interrupts not evenly spread: {:?}",
        s.interrupts_per_core
    );
    assert!(s.ipis_with_ssrs > 100);
    assert_eq!(s.ipis_without_ssrs, 0, "no SSRs → no SSR IPIs");
    assert!(
        (0.05..=0.7).contains(&s.coalescing_reduction),
        "coalescing reduction {} (paper: 0.16)",
        s.coalescing_reduction
    );
}

/// §V-C / Fig. 6f: the monolithic bottom half raises GPU throughput by
/// around 2× for the microbenchmark while *increasing* CPU overhead
/// (paper: +35% overhead for ubench).
#[test]
fn monolithic_trade_off() {
    let c = cfg();
    let mono = Mitigation {
        monolithic_bottom_half: true,
        ..Mitigation::DEFAULT
    };
    let base = ExperimentBuilder::new(c)
        .cpu_app("fluidanimate")
        .gpu_app_pinned("ubench")
        .run();
    let def = ExperimentBuilder::new(c)
        .cpu_app("fluidanimate")
        .gpu_app("ubench")
        .run();
    let m = ExperimentBuilder::new(c)
        .cpu_app("fluidanimate")
        .gpu_app("ubench")
        .mitigation(mono)
        .run();
    let gpu_gain = m.ssr_rate / def.ssr_rate;
    assert!(
        gpu_gain > 1.5,
        "monolithic ubench gain {gpu_gain} (paper: >2x)"
    );
    let cpu_def = def.cpu_perf_vs(&base).unwrap();
    let cpu_mono = m.cpu_perf_vs(&base).unwrap();
    assert!(
        cpu_mono < cpu_def,
        "monolithic should cost CPU performance: {cpu_mono} vs {cpu_def}"
    );
}

/// §V-B / Fig. 6d: coalescing raises ubench throughput (more requests per
/// interrupt before the stall) while helping or at least not hurting the
/// CPU.
#[test]
fn coalescing_trade_off() {
    let c = cfg();
    let coal = Mitigation {
        coalesce: true,
        ..Mitigation::DEFAULT
    };
    let def = ExperimentBuilder::new(c)
        .cpu_app("x264")
        .gpu_app("ubench")
        .run();
    let m = ExperimentBuilder::new(c)
        .cpu_app("x264")
        .gpu_app("ubench")
        .mitigation(coal)
        .run();
    assert!(
        m.ssr_rate > def.ssr_rate * 1.1,
        "coalescing ubench rate {} vs {}",
        m.ssr_rate,
        def.ssr_rate
    );
    assert!(
        m.kernel.mean_batch > 1.3,
        "batching {}",
        m.kernel.mean_batch
    );
    let base = ExperimentBuilder::new(c)
        .cpu_app("x264")
        .gpu_app_pinned("ubench")
        .run();
    assert!(m.cpu_perf_vs(&base).unwrap() >= def.cpu_perf_vs(&base).unwrap() - 0.02);
}

/// §VI / Fig. 12: `th_1` caps the average CPU loss near the threshold
/// (paper: <4% from 28%) at the cost of collapsing accelerator
/// throughput (paper: to ~5% of unhindered).
#[test]
fn qos_threshold_sweep() {
    let rows = fig12::fig12_with(&cfg(), &["x264", "fluidanimate", "swaptions"]);
    let avg = |t: fig12::Throttle, f: fn(&fig12::Fig12Row) -> f64| {
        let v: Vec<f64> = rows.iter().filter(|r| r.throttle == t).map(f).collect();
        hiss_sim_mean(&v)
    };
    let cpu_def = avg(fig12::Throttle::Default, |r| r.cpu_perf);
    let cpu_th1 = avg(fig12::Throttle::Th1, |r| r.cpu_perf);
    let gpu_def = avg(fig12::Throttle::Default, |r| r.gpu_perf);
    let gpu_th1 = avg(fig12::Throttle::Th1, |r| r.gpu_perf);
    assert!(
        cpu_th1 > 0.90,
        "th_1 should cap CPU loss near 1-4% plus pollution residue: {cpu_th1}"
    );
    assert!(cpu_th1 > cpu_def + 0.05, "QoS must recover CPU perf");
    assert!(
        gpu_th1 < 0.25,
        "th_1 should collapse ubench throughput (paper: ~5%): {gpu_th1}"
    );
    assert!(gpu_th1 < gpu_def * 0.35);
    // The measured SSR overhead respects the configured ceiling loosely
    // ("the CPU performance loss can be slightly more than x% because our
    // driver enforces the limit periodically").
    for r in rows.iter().filter(|r| r.throttle == fig12::Throttle::Th1) {
        assert!(
            r.ssr_overhead < 0.05,
            "{}: overhead {} far above th_1",
            r.cpu_app,
            r.ssr_overhead
        );
    }
}

fn hiss_sim_mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// §V-A observations: steering pins every interrupt to one core; with
/// GPU-only runs it lets the other cores sleep (Fig. 9: 12% → ~50%).
#[test]
fn steering_recovers_sleep() {
    let c = cfg();
    let steer = Mitigation {
        steer_single_core: true,
        ..Mitigation::DEFAULT
    };
    let def = ExperimentBuilder::new(c).gpu_app("ubench").run();
    let s = ExperimentBuilder::new(c)
        .gpu_app("ubench")
        .mitigation(steer)
        .run();
    assert!(
        s.cc6_residency > def.cc6_residency + 0.15,
        "steering should recover sleep: {} vs {}",
        s.cc6_residency,
        def.cc6_residency
    );
    assert_eq!(s.kernel.interrupts_per_core[1..].iter().sum::<u64>(), 0);
}
